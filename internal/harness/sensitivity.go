package harness

import (
	"fmt"

	"runaheadsim/internal/core"
	"runaheadsim/internal/stats"
)

// sensitivityBenches is the subset the sensitivity sweeps run over: the
// buffer's best case (mcf), a long-chain case (sphinx3), a stencil
// (zeusmp) and a stream (GemsFDTD).
var sensitivityBenches = []string{"zeusmp", "GemsFDTD", "sphinx3", "mcf"}

// SensBufferSize reproduces the Section 5 sensitivity analysis behind the
// 32-uop runahead buffer: sweep the buffer size (and with it the chain
// length cap) and report the IPC gain of the RB+CC system over baseline.
func SensBufferSize(r *Runner) Table {
	sizes := []int{8, 16, 32, 64, 128}
	t := Table{ID: "sens-buffer", Title: "IPC gain of RB+CC vs runahead buffer size (uops)",
		Columns: []string{"Benchmark"}}
	for _, s := range sizes {
		t.Columns = append(t.Columns, fmt.Sprint(s))
	}
	benches := r.filter(sensitivityBenches)
	gmeans := make([][]float64, len(sizes))
	for _, name := range benches {
		base := r.Result(name, Baseline)
		row := []string{name}
		for i, size := range sizes {
			rc := BufferCC
			rc.MaxChain = size
			v := r.Result(name, rc)
			ratio := v.IPC / base.IPC
			gmeans[i] = append(gmeans[i], ratio)
			row = append(row, pct(100*(ratio-1)))
		}
		t.AddRow(row...)
	}
	row := []string{"GMean"}
	for i := range sizes {
		row = append(row, pct(100*(stats.GeoMean(gmeans[i])-1)))
	}
	t.AddRow(row...)
	t.Notes = append(t.Notes, "the paper picked 32 uops through this analysis (Section 5); below ~16 long chains truncate, far above 32 nothing more is gained")
	return t
}

// SensChainCache sweeps the chain cache size. The paper keeps it at two
// entries deliberately so stale chains age out (Section 4.4).
func SensChainCache(r *Runner) Table {
	sizes := []int{1, 2, 4, 8}
	t := Table{ID: "sens-chaincache", Title: "IPC gain of RB+CC vs chain cache entries",
		Columns: []string{"Benchmark"}}
	for _, s := range sizes {
		t.Columns = append(t.Columns, fmt.Sprint(s))
	}
	benches := r.filter(sensitivityBenches)
	gmeans := make([][]float64, len(sizes))
	for _, name := range benches {
		base := r.Result(name, Baseline)
		row := []string{name}
		for i, size := range sizes {
			rc := BufferCC
			rc.CCEntries = size
			v := r.Result(name, rc)
			ratio := v.IPC / base.IPC
			gmeans[i] = append(gmeans[i], ratio)
			row = append(row, pct(100*(ratio-1)))
		}
		t.AddRow(row...)
	}
	row := []string{"GMean"}
	for i := range sizes {
		row = append(row, pct(100*(stats.GeoMean(gmeans[i])-1)))
	}
	t.AddRow(row...)
	return t
}

// ExtPrefetchers compares the paper's stream prefetcher against a
// region-delta (stride) prefetcher — the related-work alternative of
// Section 2 — and against the hybrid runahead policy, over the medium+high
// suite. The point the paper makes indirectly: address-prediction
// prefetchers each cover one pattern class, while runahead covers whatever
// the program's own code computes.
func ExtPrefetchers(r *Runner) Table {
	stream := Baseline.WithPF()
	delta := Baseline.WithPF()
	delta.PFKind = "delta"
	configs := []RunConfig{stream, delta, Hybrid}
	t := Table{ID: "ext-prefetchers", Title: "% IPC over no-PF baseline: stream PF vs delta (stride) PF vs hybrid runahead",
		Columns: []string{"Benchmark", "StreamPF", "DeltaPF", "Hybrid"}}
	gmeans := make([][]float64, len(configs))
	for _, name := range r.mhNames() {
		base := r.Result(name, Baseline)
		row := []string{name}
		for i, rc := range configs {
			v := r.Result(name, rc)
			ratio := v.IPC / base.IPC
			gmeans[i] = append(gmeans[i], ratio)
			row = append(row, pct(100*(ratio-1)))
		}
		t.AddRow(row...)
	}
	row := []string{"GMean"}
	for i := range configs {
		row = append(row, pct(100*(stats.GeoMean(gmeans[i])-1)))
	}
	t.AddRow(row...)
	t.Notes = append(t.Notes,
		"extension beyond the paper: the delta engine covers the strided stencils the stream engine misses, but neither covers the gathers — runahead does")
	return t
}

// AdaptiveHybrid is the extension configuration: the feedback-directed
// hybrid that skips intervals whose chains are learned to be barren.
var AdaptiveHybrid = RunConfig{Mode: core.ModeAdaptive, Enhancements: true}

// ExtAdaptive compares the paper's hybrid policy against the adaptive
// extension over the medium+high suite.
func ExtAdaptive(r *Runner) Table {
	configs := []RunConfig{Hybrid, AdaptiveHybrid}
	t := Table{ID: "ext-adaptive", Title: "% IPC over no-PF baseline: Figure 8 hybrid vs feedback-directed adaptive hybrid",
		Columns: []string{"Benchmark", "Hybrid", "Adaptive", "Demotions"}}
	gmeans := make([][]float64, len(configs))
	for _, name := range r.mhNames() {
		base := r.Result(name, Baseline)
		row := []string{name}
		for i, rc := range configs {
			v := r.Result(name, rc)
			ratio := v.IPC / base.IPC
			gmeans[i] = append(gmeans[i], ratio)
			row = append(row, pct(100*(ratio-1)))
		}
		row = append(row, fmt.Sprint(r.Result(name, AdaptiveHybrid).Stats.AdaptiveDemotions))
		t.AddRow(row...)
	}
	row := []string{"GMean"}
	for i := range configs {
		row = append(row, pct(100*(stats.GeoMean(gmeans[i])-1)))
	}
	t.AddRow(append(row, "")...)
	t.Notes = append(t.Notes,
		"extension beyond the paper: per-PC feedback skips runahead intervals whose chains historically generate no buffer-driven misses")
	return t
}
