package harness

import (
	"bytes"
	"fmt"
	"math"
	"runtime"
	"time"

	"runaheadsim/internal/core"
	"runaheadsim/internal/snapshot"
	"runaheadsim/internal/stats"
	"runaheadsim/internal/workload"
)

// This file benchmarks the event-driven memory system and the whole-simulator
// stall skip: the warped clock (core.ClockWarp — quiescence detection plus
// memsys.NextEvent horizons) against the per-cycle reference (core.ClockTick)
// on the memory-bound workloads whose DRAM-blocked stretches the warp exists
// to skip. As with BenchCore, every timed pair doubles as an equivalence
// check — identical final cycle, identical IPC, byte-identical machine
// snapshots — so the speedup can never come from a behavioral shortcut.
// cmd/runahead-sweep's -bench-mem flag writes the result to BENCH_mem.json;
// `make bench-mem` is the canonical invocation.

// BenchMemModes are the three systems the memory-system benchmark exercises:
// the baseline and the paper's two runahead-buffer flavors.
func BenchMemModes() []core.Mode {
	return []core.Mode{core.ModeNone, core.ModeBuffer, core.ModeBufferCC}
}

// DefaultBenchMemBenches is the memory-bound benchmark set: the workloads
// where the ROB spends most baseline cycles blocked on DRAM.
func DefaultBenchMemBenches() []string {
	return []string{"mcf", "milc", "omnetpp", "libquantum", "lbm"}
}

// benchMemReps is the number of timing repetitions per (bench, mode, clock)
// cell; the reported wall time is the minimum. The simulation itself is
// deterministic — every rep produces bit-identical state, which each rep's
// equivalence check re-proves — so the only rep-to-rep variance is machine
// noise, and min-of-N is the standard noise-robust estimator.
const benchMemReps = 3

// stallDominatedFrac classifies a run as stall-dominated: the warp's
// quiescence detector proved a majority of all simulated cycles idle and
// skipped them. Warped-cycle counts are a property of the simulated machine,
// not of wall time, so membership is deterministic. This is the subset the
// headline geomean covers — the memory-bound runs where stall cycles dominate
// and stall skipping is the operative optimization. Runs below the threshold
// (runahead modes, whose whole point is to eliminate those stalls, and
// workloads that keep issuing through their misses) still appear in Runs and
// in GeomeanSpeedupAll; the warp is required to be harmless there, not
// helpful.
const stallDominatedFrac = 0.5

// BenchMemRun is one (benchmark, mode) timing pair.
type BenchMemRun struct {
	Bench string `json:"bench"`
	Mode  string `json:"mode"`

	SimCycles int64   `json:"sim_cycles"`
	Committed uint64  `json:"committed_uops"`
	IPC       float64 `json:"ipc"`

	// Warp coverage: how many quiescent spans were skipped and what share
	// of all simulated cycles they covered.
	Warps        int64   `json:"warps"`
	WarpedCycles int64   `json:"warped_cycles"`
	WarpedFrac   float64 `json:"warped_cycle_fraction"`

	// MemStallFrac is the share of cycles the ROB head spent blocked on a
	// DRAM-bound load — the machine-state view of memory-boundedness that
	// WarpedFrac turns into skipped work.
	MemStallFrac float64 `json:"mem_stall_fraction"`

	// StallDominated marks the runs the headline geomean covers:
	// WarpedFrac >= 0.5, i.e. a majority of all simulated cycles sat in
	// provably-idle spans the warp skipped.
	StallDominated bool `json:"stall_dominated"`

	TickSec float64 `json:"tick_wall_sec"`
	WarpSec float64 `json:"warp_wall_sec"`

	TickCyclesPerSec float64 `json:"tick_sim_cycles_per_sec"`
	WarpCyclesPerSec float64 `json:"warp_sim_cycles_per_sec"`
	Speedup          float64 `json:"speedup"`

	// SnapshotDigest is the FNV digest of the drained machine snapshot —
	// verified identical between the two clock-mode runs before reporting.
	SnapshotDigest string `json:"snapshot_digest"`
}

// BenchMemReport is the BENCH_mem.json schema.
type BenchMemReport struct {
	MeasureUops uint64        `json:"measure_uops"`
	Reps        int           `json:"timing_reps"`
	Runs        []BenchMemRun `json:"runs"`
	// GeomeanSpeedup is the headline number: geomean over the
	// stall-dominated runs (see stallDominatedFrac). GeomeanSpeedupAll
	// covers every run, including those with nothing to skip.
	GeomeanSpeedup    float64 `json:"geomean_speedup_stall_dominated"`
	GeomeanSpeedupAll float64 `json:"geomean_speedup_all"`
}

// BenchMem times every (benchmark, mode) pair under both clock modes and
// verifies their equivalence: same final cycle (hence identical IPC) and
// byte-identical drained snapshots, re-checked on every timing repetition.
// Benches nil selects the memory-bound default set; uops 0 selects 300k
// measured uops per run.
func BenchMem(benches []string, uops uint64) (*BenchMemReport, error) {
	if len(benches) == 0 {
		benches = DefaultBenchMemBenches()
	}
	if uops == 0 {
		uops = 300_000
	}
	rep := &BenchMemReport{MeasureUops: uops, Reps: benchMemReps}
	logAll, logDom, nDom := 0.0, 0.0, 0
	for _, bench := range benches {
		p, err := workload.Load(bench)
		if err != nil {
			return nil, err
		}
		for _, mode := range BenchMemModes() {
			timed := func(clock core.ClockMode) (sec float64, c *core.Core, snap []byte, err error) {
				cfg := core.DefaultConfig()
				cfg.Mode = mode
				cfg.ClockMode = clock
				c = core.New(cfg, p)
				runtime.GC() // keep allocator state comparable across the pair
				//simlint:allow determinism -- wall-clock timing is the measurement here, not simulated state
				t0 := time.Now()
				c.Run(uops)
				sec = time.Since(t0).Seconds()
				if err = c.Drain(); err != nil {
					return 0, nil, nil, fmt.Errorf("%s/%v/%v: %w", bench, mode, clock, err)
				}
				snap, err = c.Snapshot()
				if err != nil {
					return 0, nil, nil, fmt.Errorf("%s/%v/%v: %w", bench, mode, clock, err)
				}
				return sec, c, snap, nil
			}
			var tickSec, warpSec float64
			var warpCore, tickCore *core.Core
			var warpSnap []byte
			for r := 0; r < benchMemReps; r++ {
				ts, tc, tickSnap, err := timed(core.ClockTick)
				if err != nil {
					return nil, err
				}
				ws, wc, wSnap, err := timed(core.ClockWarp)
				if err != nil {
					return nil, err
				}
				if wc.Now() != tc.Now() {
					return nil, fmt.Errorf("%s/%v: clocks diverged — warp finished at cycle %d, tick at %d",
						bench, mode, wc.Now(), tc.Now())
				}
				if !bytes.Equal(wSnap, tickSnap) {
					return nil, fmt.Errorf("%s/%v: clocks diverged — machine snapshots differ (%d vs %d bytes)",
						bench, mode, len(wSnap), len(tickSnap))
				}
				if warpSnap != nil && !bytes.Equal(wSnap, warpSnap) {
					return nil, fmt.Errorf("%s/%v: nondeterministic — snapshots differ across repetitions", bench, mode)
				}
				if r == 0 || ts < tickSec {
					tickSec = ts
				}
				if r == 0 || ws < warpSec {
					warpSec = ws
				}
				warpCore, tickCore, warpSnap = wc, tc, wSnap
			}
			_ = tickCore
			cycles := warpCore.Stats().Cycles
			warps, skipped := warpCore.WarpStats()
			run := BenchMemRun{
				Bench:            bench,
				Mode:             mode.String(),
				SimCycles:        cycles,
				Committed:        warpCore.Stats().Committed,
				IPC:              warpCore.Stats().IPC(),
				Warps:            warps,
				WarpedCycles:     skipped,
				WarpedFrac:       stats.Div(float64(skipped), float64(cycles)),
				MemStallFrac:     stats.Div(float64(warpCore.Stats().MemStallCycles), float64(cycles)),
				TickSec:          tickSec,
				WarpSec:          warpSec,
				TickCyclesPerSec: float64(cycles) / tickSec,
				WarpCyclesPerSec: float64(cycles) / warpSec,
				Speedup:          tickSec / warpSec,
				SnapshotDigest:   fmt.Sprintf("%016x", snapshot.HashBytes(warpSnap)),
			}
			run.StallDominated = run.WarpedFrac >= stallDominatedFrac
			logAll += math.Log(run.Speedup)
			if run.StallDominated {
				logDom += math.Log(run.Speedup)
				nDom++
			}
			rep.Runs = append(rep.Runs, run)
		}
	}
	rep.GeomeanSpeedupAll = math.Exp(logAll / float64(len(rep.Runs)))
	if nDom > 0 {
		rep.GeomeanSpeedup = math.Exp(logDom / float64(nDom))
	}
	return rep, nil
}
