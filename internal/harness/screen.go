package harness

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"runaheadsim/internal/core"
	"runaheadsim/internal/energy"
	"runaheadsim/internal/twin"
	"runaheadsim/internal/workload"
)

// SetScreen activates the screening tier on this runner (nil deactivates):
// subsequent Result calls for non-promoted pairs return twin predictions
// instead of simulating. Cached detailed results are unaffected — screening
// changes only how new entries are produced.
func (r *Runner) SetScreen(sc *Screen) {
	r.mu.Lock()
	r.screen = sc
	r.mu.Unlock()
}

// profEntry is one memoized workload profile; once gates the single build.
type profEntry struct {
	once sync.Once
	wp   *twin.WorkloadProfile
}

// twinProfile returns the memoized interpreter-speed profile for a bench
// (single-flight, like detailed runs). Warmup and measure lengths mirror the
// detailed runs so calibration compares like with like.
func (r *Runner) twinProfile(bench string) *twin.WorkloadProfile {
	r.mu.Lock()
	e := r.profiles[bench]
	if e == nil {
		e = &profEntry{}
		r.profiles[bench] = e
	}
	r.mu.Unlock()
	e.once.Do(func() {
		spec, ok := workload.SpecOf(bench)
		if !ok {
			panic(fmt.Sprintf("harness: unknown benchmark %q", bench))
		}
		//simlint:allow determinism -- wall-clock timing is the measurement here, not simulated state
		t0 := time.Now()
		p := workload.MustLoad(bench)
		m := twin.MachineFrom(twinMachineConfig())
		e.wp = twin.BuildProfile(bench, p, m, r.opts.warmup(spec.Class), r.opts.MeasureUops)
		atomic.AddInt64(&r.profileWallNanos, int64(time.Since(t0)))
	})
	return e.wp
}

// ProfileWallSec reports the wall seconds this runner has spent in
// interpreter-speed profiling passes (twin profiles, BBV phase profiles) —
// the screening tier's overhead, reported alongside simulation wall time.
func (r *Runner) ProfileWallSec() float64 {
	return float64(atomic.LoadInt64(&r.profileWallNanos)) / 1e9
}

// Result provenance values. Every Result carries one, so merged twin/detailed
// sweeps stay attributable all the way into report JSON.
const (
	ProvenanceDetailed = "detailed"
	ProvenanceTwin     = "twin"
)

// CalibrationConfigs is the matrix the twin is calibrated against: every
// runahead mechanism at Table 1 sizes, no prefetchers (the twin's profile
// pass does not model prefetch-perturbed cache contents).
func CalibrationConfigs() []RunConfig {
	return []RunConfig{Baseline, Runahead, Buffer, BufferCC, Hybrid}
}

// twinMachineConfig is the structural configuration the twin is keyed to:
// the Table 1 baseline. Per-RunConfig differences (mode, enhancements) are
// model inputs, not machine identity.
func twinMachineConfig() core.Config { return configFor(Baseline) }

// TwinFingerprint is the config fingerprint calibration artifacts are keyed
// by; a twin calibrated under one machine refuses to screen another.
func TwinFingerprint() uint64 { return core.ConfigFingerprint(twinMachineConfig()) }

// Calibrate runs the detailed calibration matrix (benches × configs, with
// the runner's memo cache and `workers` parallel simulations), profiles
// every bench at interpreter speed, and fits the twin. It returns the
// fitted model and the calibration points (for rescoring and reporting).
// Empty benches/configs default to the full seed matrix.
func (r *Runner) Calibrate(benches []string, configs []RunConfig, workers int) (*twin.Model, []twin.Point, error) {
	if len(benches) == 0 {
		benches = workload.Names()
	}
	if len(configs) == 0 {
		configs = CalibrationConfigs()
	}
	var pairs []PlannedRun
	for _, b := range benches {
		for _, rc := range configs {
			pairs = append(pairs, PlannedRun{Bench: b, Config: rc})
		}
	}
	r.Prewarm(pairs, workers)
	r.buildProfiles(benches, workers)

	m := twin.MachineFrom(twinMachineConfig())
	var points []twin.Point
	for _, bench := range benches {
		spec, ok := workload.SpecOf(bench)
		if !ok {
			return nil, nil, fmt.Errorf("harness: unknown benchmark %q", bench)
		}
		wp := r.twinProfile(bench)
		for _, rc := range configs {
			res := r.Result(bench, rc)
			pt := twin.PointFrom(wp, m, rc.Mode, spec.Class.String())
			pt.DetCycles = float64(res.Stats.Cycles)
			pt.DetIPC = res.IPC
			pt.DetEnergyUJ = res.Energy.Total()
			points = append(points, pt)
		}
	}
	model, err := twin.Fit(points, m, TwinFingerprint(), r.opts.MeasureUops)
	if err != nil {
		return nil, nil, err
	}
	return model, points, nil
}

// buildProfiles fills the runner's profile cache for the given benches on a
// worker pool (each profile is a single-flight memo, like detailed runs).
func (r *Runner) buildProfiles(benches []string, workers int) {
	if workers < 1 {
		workers = 1
	}
	if workers > len(benches) {
		workers = len(benches)
	}
	ch := make(chan string)
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for b := range ch {
				r.twinProfile(b)
			}
		}()
	}
	for _, b := range benches {
		ch <- b
	}
	close(ch)
	wg.Wait()
}

// ScreenOptions tunes the screening tier's promotion policy.
type ScreenOptions struct {
	// Model is the calibrated twin (required).
	Model *twin.Model
	// TopK promotes the benches with the largest twin-predicted
	// RB-vs-baseline IPC deltas — the regions the headline figures hinge
	// on. Zero means 3.
	TopK int
	// UncertainPct promotes benches whose calibration-time IPC MAPE
	// exceeds this percentage (or that were never calibrated): where the
	// twin knows it is wrong, the detailed simulator decides. Zero means
	// 10.
	UncertainPct float64
	// Critical benches are always promoted (figure-critical cells the
	// caller refuses to take from the twin).
	Critical []string
}

// ScreenRow is one bench's screening decision, for the provenance table.
type ScreenRow struct {
	Bench        string  `json:"bench"`
	Provenance   string  `json:"provenance"`
	Reason       string  `json:"reason,omitempty"`
	TwinDeltaPct float64 `json:"twin_rb_delta_pct"`
	MAPEPct      float64 `json:"calibration_mape_pct"`
}

// Screen is a built screening plan: which benches run detailed, and the
// twin that answers for the rest.
type Screen struct {
	model    *twin.Model
	machine  twin.Machine
	rows     []ScreenRow
	promoted map[string]bool
}

// BuildScreen profiles every bench the plan touches, evaluates the twin
// across the matrix, and decides promotions: top-k twin-predicted
// RB-vs-baseline deltas, twin-uncertain benches, and caller-critical ones.
// Configurations the twin cannot model (prefetchers, DepTrack, structure-
// size overrides) are always simulated in detail regardless of bench.
func BuildScreen(r *Runner, plan []PlannedRun, so ScreenOptions, workers int) (*Screen, error) {
	if so.Model == nil {
		return nil, fmt.Errorf("harness: screening needs a calibrated twin model")
	}
	if so.Model.Fingerprint != TwinFingerprint() {
		return nil, fmt.Errorf("harness: twin model fingerprint %016x does not match this machine (%016x): recalibrate",
			so.Model.Fingerprint, TwinFingerprint())
	}
	topK := so.TopK
	if topK <= 0 {
		topK = 3
	}
	uncertain := so.UncertainPct
	if uncertain <= 0 {
		uncertain = 10
	}

	var benches []string
	seen := map[string]bool{}
	for _, pr := range plan {
		if !seen[pr.Bench] {
			seen[pr.Bench] = true
			benches = append(benches, pr.Bench)
		}
	}
	r.buildProfiles(benches, workers)

	sc := &Screen{
		model:    so.Model,
		machine:  twin.MachineFrom(twinMachineConfig()),
		promoted: make(map[string]bool),
	}
	critical := map[string]bool{}
	for _, b := range so.Critical {
		critical[b] = true
	}

	type cand struct {
		bench string
		delta float64
		mape  float64
	}
	cands := make([]cand, 0, len(benches))
	for _, bench := range benches {
		spec, ok := workload.SpecOf(bench)
		if !ok {
			return nil, fmt.Errorf("harness: unknown benchmark %q", bench)
		}
		wp := r.twinProfile(bench)
		base, err := so.Model.Predict(twin.PointFrom(wp, sc.machine, core.ModeNone, spec.Class.String()))
		if err != nil {
			return nil, err
		}
		rb, err := so.Model.Predict(twin.PointFrom(wp, sc.machine, core.ModeBuffer, spec.Class.String()))
		if err != nil {
			return nil, err
		}
		delta := 100 * (rb.IPC - base.IPC) / base.IPC
		cands = append(cands, cand{bench: bench, delta: delta, mape: so.Model.WorkloadMAPE(bench)})
	}

	// Top-k by twin-predicted |delta|, name-tie-broken for determinism.
	ranked := make([]cand, len(cands))
	copy(ranked, cands)
	sort.SliceStable(ranked, func(a, b int) bool {
		da, db := abs(ranked[a].delta), abs(ranked[b].delta)
		if da != db {
			return da > db
		}
		return ranked[a].bench < ranked[b].bench
	})
	topSet := map[string]bool{}
	for i := 0; i < topK && i < len(ranked); i++ {
		topSet[ranked[i].bench] = true
	}

	for _, c := range cands {
		row := ScreenRow{Bench: c.bench, TwinDeltaPct: c.delta, MAPEPct: c.mape, Provenance: ProvenanceTwin}
		switch {
		case critical[c.bench]:
			row.Reason = "critical"
		case c.mape < 0 || c.mape > uncertain:
			row.Reason = "uncertain"
		case topSet[c.bench]:
			row.Reason = "top-k delta"
		}
		if row.Reason != "" {
			row.Provenance = ProvenanceDetailed
			sc.promoted[c.bench] = true
		}
		sc.rows = append(sc.rows, row)
	}
	return sc, nil
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}

// WantsDetailed reports whether this pair must run on the detailed
// simulator: promoted bench, or a configuration outside the twin's modeling
// domain.
func (sc *Screen) WantsDetailed(bench string, rc RunConfig) bool {
	if sc.promoted[bench] {
		return true
	}
	return rc.DepTrack || rc.Prefetch || rc.MaxChain != 0 || rc.CCEntries != 0
}

// Promoted filters a plan down to the pairs that will actually simulate in
// detail — the Prewarm work list under screening.
func (sc *Screen) Promoted(plan []PlannedRun) []PlannedRun {
	var out []PlannedRun
	for _, pr := range plan {
		if sc.WantsDetailed(pr.Bench, pr.Config) {
			out = append(out, pr)
		}
	}
	return out
}

// Rows returns the per-bench screening decisions in plan order.
func (sc *Screen) Rows() []ScreenRow { return sc.rows }

// Table renders the screening decisions as a provenance table.
func (sc *Screen) Table() Table {
	t := Table{
		ID:      "screen",
		Title:   "Screening tier: twin-predicted vs detailed provenance",
		Columns: []string{"Benchmark", "Provenance", "Reason", "Twin RB vs Base", "Calib MAPE"},
	}
	var promoted int
	for _, row := range sc.rows {
		mape := "-"
		if row.MAPEPct >= 0 {
			mape = pct(row.MAPEPct)
		}
		reason := row.Reason
		if reason == "" {
			reason = "-"
		}
		t.AddRow(row.Bench, row.Provenance, reason, pct(row.TwinDeltaPct), mape)
		if row.Provenance == ProvenanceDetailed {
			promoted++
		}
	}
	t.Notes = append(t.Notes, fmt.Sprintf(
		"%d of %d benchmarks promoted to detailed simulation; the rest are analytical-twin predictions (model MAPE %.1f%%, r %.3f)",
		promoted, len(sc.rows), sc.model.Scores.MAPEPct, sc.model.Scores.PearsonR))
	return t
}

// twinRun synthesizes a Result from the twin for a non-promoted pair.
func (r *Runner) twinRun(sc *Screen, bench string, rc RunConfig) *Result {
	spec, ok := workload.SpecOf(bench)
	if !ok {
		panic(fmt.Sprintf("harness: unknown benchmark %q", bench))
	}
	wp := r.twinProfile(bench)
	pt := twin.PointFrom(wp, sc.machine, rc.Mode, spec.Class.String())
	pred, err := sc.model.Predict(pt)
	if err != nil {
		panic(fmt.Sprintf("harness: twin prediction for %s/%s: %v", bench, rc.Label(), err))
	}
	return &Result{
		Bench:        bench,
		Config:       rc,
		Stats:        core.NewTwinStats(pred.Cycles, pt.Uops, pred.CPI),
		Energy:       twinBreakdown(pred.EnergyUJ, pt, pred.Cycles),
		IPC:          pred.IPC,
		MPKI:         pred.MPKI,
		MemStallPct:  pred.MemStallPct,
		DRAMRequests: wp.DRAMLoads + wp.DRAMStores,
		Provenance:   ProvenanceTwin,
	}
}

// twinBreakdown splits the twin's fitted total energy across the report's
// component buckets using the white-box per-event costs as proportions:
// the total is calibrated, the split is structural.
func twinBreakdown(totalUJ float64, pt twin.Point, cycles int64) energy.Breakdown {
	if totalUJ <= 0 {
		return energy.Breakdown{}
	}
	p := energy.DefaultParams()
	uops := pt.EX[twin.EUops]
	l1 := pt.EX[twin.EL1]
	llc := pt.EX[twin.ELLC]
	dram := pt.EX[twin.EDRAM]
	ra := pt.EX[twin.ERA]
	b := energy.Breakdown{
		FrontEnd:    uops * (p.Fetch + p.Decode),
		Backend:     uops * (p.Rename + p.RSDispatch + p.ROBWrite + p.ROBRead + p.ALU),
		Caches:      (uops + l1) * p.L1Access, // +uops: I-side fetches
		RunaheadHW:  ra * (p.PCCAM + p.DestCAM),
		CoreLeakage: float64(cycles) * p.CoreLeakage,
		DRAMDynamic: dram * (p.DRAMReadWrite + p.DRAMActivate),
		DRAMStatic:  float64(cycles) * p.DRAMBackground,
	}
	b.Caches += llc * p.LLCAccess
	sum := b.Total()
	if sum <= 0 {
		return energy.Breakdown{}
	}
	s := totalUJ / sum // also normalizes the pJ-scale components to uJ
	b.FrontEnd *= s
	b.Backend *= s
	b.Caches *= s
	b.RunaheadHW *= s
	b.CoreLeakage *= s
	b.DRAMDynamic *= s
	b.DRAMStatic *= s
	return b
}
