package harness

import (
	"fmt"
	"testing"

	"runaheadsim/internal/workload"
)

// TestSensitivityBenchesKnown pins the sensitivity subset to real workloads:
// a renamed benchmark would otherwise only fail deep inside a sweep.
func TestSensitivityBenchesKnown(t *testing.T) {
	for _, name := range sensitivityBenches {
		if _, ok := workload.SpecOf(name); !ok {
			t.Errorf("sensitivity bench %q is not a known workload", name)
		}
	}
}

// TestSensitivityConfigsDistinct checks the swept configurations are
// distinguishable in the memo cache — a buffer-size or chain-cache override
// that collapsed onto the stock BufferCC key would silently sweep nothing.
func TestSensitivityConfigsDistinct(t *testing.T) {
	seen := map[string]string{key("mcf", BufferCC): "stock BufferCC"}
	for _, size := range []int{8, 16, 32, 64, 128} {
		rc := BufferCC
		rc.MaxChain = size
		k := key("mcf", rc)
		label := fmt.Sprintf("MaxChain=%d", size)
		if prev, dup := seen[k]; dup {
			t.Errorf("%s shares a cache key with %s", label, prev)
		}
		seen[k] = label
	}
	for _, size := range []int{1, 2, 4, 8} {
		rc := BufferCC
		rc.CCEntries = size
		k := key("mcf", rc)
		label := fmt.Sprintf("CCEntries=%d", size)
		if prev, dup := seen[k]; dup {
			t.Errorf("%s shares a cache key with %s", label, prev)
		}
		seen[k] = label
	}
}

// checkPctTable asserts every data cell parses as the pct() rendering and
// that the table closes with a GMean row.
func checkPctTable(t *testing.T, tb Table, skipCols int) {
	t.Helper()
	if len(tb.Rows) == 0 {
		t.Fatalf("%s: no rows", tb.ID)
	}
	if got := tb.Rows[len(tb.Rows)-1][0]; got != "GMean" {
		t.Fatalf("%s: last row is %q, want GMean", tb.ID, got)
	}
	for _, row := range tb.Rows {
		if len(row) != len(tb.Columns) {
			t.Fatalf("%s: row %v has %d cells, want %d", tb.ID, row, len(row), len(tb.Columns))
		}
		for _, cell := range row[skipCols:] {
			if cell == "" {
				continue // the GMean row leaves non-pct columns blank
			}
			var v float64
			if _, err := fmt.Sscanf(cell, "%f%%", &v); err != nil {
				t.Fatalf("%s: unparseable cell %q in row %v", tb.ID, cell, row)
			}
		}
	}
}

// TestSensBufferSizeShape runs the buffer-size sweep on a reduced set and
// checks its structure: one column per swept size, one row per bench plus
// the GMean row, every cell a percentage.
func TestSensBufferSizeShape(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	r := NewRunner(Options{MeasureUops: 8_000, WarmupUops: 8_000, Benchmarks: []string{"mcf", "zeusmp"}})
	tb := SensBufferSize(r)
	wantCols := []string{"Benchmark", "8", "16", "32", "64", "128"}
	if len(tb.Columns) != len(wantCols) {
		t.Fatalf("sens-buffer columns = %v, want %v", tb.Columns, wantCols)
	}
	for i, c := range wantCols {
		if tb.Columns[i] != c {
			t.Fatalf("sens-buffer columns = %v, want %v", tb.Columns, wantCols)
		}
	}
	if len(tb.Rows) != 3 { // two benches + GMean
		t.Fatalf("sens-buffer rows = %d, want 3", len(tb.Rows))
	}
	checkPctTable(t, tb, 1)
}

// TestSensChainCacheShape does the same for the chain-cache sweep.
func TestSensChainCacheShape(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	r := NewRunner(Options{MeasureUops: 8_000, WarmupUops: 8_000, Benchmarks: []string{"mcf", "zeusmp"}})
	tb := SensChainCache(r)
	wantCols := []string{"Benchmark", "1", "2", "4", "8"}
	if len(tb.Columns) != len(wantCols) {
		t.Fatalf("sens-chaincache columns = %v, want %v", tb.Columns, wantCols)
	}
	if len(tb.Rows) != 3 {
		t.Fatalf("sens-chaincache rows = %d, want 3", len(tb.Rows))
	}
	checkPctTable(t, tb, 1)
}

// TestExtAdaptiveShape checks the adaptive-extension table: the demotions
// column is a raw count (not a percentage) and the GMean row leaves it
// blank.
func TestExtAdaptiveShape(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	r := NewRunner(Options{MeasureUops: 8_000, WarmupUops: 8_000, Benchmarks: []string{"mcf", "zeusmp"}})
	tb := ExtAdaptive(r)
	wantCols := []string{"Benchmark", "Hybrid", "Adaptive", "Demotions"}
	if len(tb.Columns) != len(wantCols) {
		t.Fatalf("ext-adaptive columns = %v, want %v", tb.Columns, wantCols)
	}
	if len(tb.Rows) != 3 {
		t.Fatalf("ext-adaptive rows = %d, want 3", len(tb.Rows))
	}
	last := tb.Rows[len(tb.Rows)-1]
	if last[0] != "GMean" || last[len(last)-1] != "" {
		t.Fatalf("ext-adaptive GMean row = %v, want trailing blank demotions cell", last)
	}
	for _, row := range tb.Rows[:len(tb.Rows)-1] {
		var n int
		if _, err := fmt.Sscanf(row[len(row)-1], "%d", &n); err != nil || n < 0 {
			t.Fatalf("ext-adaptive demotions cell %q is not a count", row[len(row)-1])
		}
	}
}
