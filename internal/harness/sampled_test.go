package harness

import (
	"math"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"runaheadsim/internal/core"
	"runaheadsim/internal/prog"
	"runaheadsim/internal/workload"
)

// TestPlanCollectsRuns checks planning mode records each distinct pair once,
// in first-request order, without simulating anything.
func TestPlanCollectsRuns(t *testing.T) {
	calls := int32(0)
	r := NewRunner(Options{MeasureUops: 1_000, Progress: func(string, string) { atomic.AddInt32(&calls, 1) }})
	runs := r.Plan(func(r *Runner) {
		r.Result("mcf", Baseline)
		r.Result("mcf", BufferCC)
		r.Result("mcf", Baseline) // duplicate: must collapse
		r.Result("lbm", Baseline)
	})
	if len(runs) != 3 {
		t.Fatalf("planned %d runs, want 3: %+v", len(runs), runs)
	}
	if runs[0].Bench != "mcf" || runs[0].Config != Baseline ||
		runs[1].Config != BufferCC || runs[2].Bench != "lbm" {
		t.Fatalf("planned runs out of order: %+v", runs)
	}
	if atomic.LoadInt32(&calls) != 0 {
		t.Fatal("planning mode must not simulate (Progress fired)")
	}
	if len(r.cache) != 0 {
		t.Fatal("planning mode must not populate the cache")
	}
}

// TestPlaceholderSurvivesFigureBuilders runs every experiment builder in
// planning mode: placeholders must not trip any dereference or division in
// the figure code, and the plan must cover a plausible run count.
func TestPlaceholderSurvivesFigureBuilders(t *testing.T) {
	r := NewRunner(Options{MeasureUops: 1_000, Benchmarks: []string{"mcf", "lbm"}})
	runs := r.Plan(func(r *Runner) {
		for _, e := range Experiments() {
			e.Build(r)
		}
	})
	if len(runs) < 10 {
		t.Fatalf("full experiment plan only has %d runs", len(runs))
	}
}

// TestPrewarmParallelByteIdentical checks the satellite guarantee: a sweep
// prewarmed on N workers renders byte-identically to a purely sequential one.
func TestPrewarmParallelByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	opts := Options{MeasureUops: 6_000, WarmupUops: 6_000, Benchmarks: []string{"mcf", "libquantum"}}
	render := func(r *Runner) string {
		var sb strings.Builder
		for _, tb := range []Table{Figure9(r), Figure12(r)} {
			tb.Render(&sb)
		}
		return sb.String()
	}

	seq := NewRunner(opts)
	want := render(seq)

	par := NewRunner(opts)
	runs := par.Plan(func(r *Runner) { render(r) })
	par.Prewarm(runs, 4)
	if got := render(par); got != want {
		t.Errorf("parallel prewarmed sweep differs from sequential:\n--- sequential ---\n%s\n--- parallel ---\n%s", want, got)
	}
}

// TestResultSingleFlight checks concurrent Result calls for one pair share a
// single simulation.
func TestResultSingleFlight(t *testing.T) {
	var sims int32
	r := NewRunner(Options{MeasureUops: 3_000, WarmupUops: 3_000,
		Progress: func(string, string) { atomic.AddInt32(&sims, 1) }})
	var wg sync.WaitGroup
	results := make([]*Result, 8)
	for i := range results {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i] = r.Result("mcf", Baseline)
		}(i)
	}
	wg.Wait()
	for _, res := range results[1:] {
		if res != results[0] {
			t.Fatal("concurrent identical runs returned distinct results")
		}
	}
	if n := atomic.LoadInt32(&sims); n != 1 {
		t.Fatalf("pair simulated %d times, want 1", n)
	}
}

// TestSampledMatchesFullRun checks the acceptance bound: the sampled engine
// reproduces the full detailed run's IPC within the documented sampling
// error, in baseline and runahead-buffer modes.
func TestSampledMatchesFullRun(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	const tolerancePct = 15 // documented sampling error bound (EXPERIMENTS.md)
	opts := Options{MeasureUops: 120_000, WarmupUops: 60_000}
	full := NewRunner(opts)
	sopts := opts
	sopts.Sample = &SampleOptions{Intervals: 4, WarmupUops: 20_000, Workers: 4}
	sampled := NewRunner(sopts)
	wopts := opts
	wopts.Sample = &SampleOptions{Intervals: 4, WarmupUops: 20_000, WindowUops: 15_000, Workers: 4}
	windowed := NewRunner(wopts) // true sampling: half the region fast-forwarded

	for _, rc := range []RunConfig{Baseline, BufferCC} {
		f := full.Result("mcf", rc)
		s := sampled.Result("mcf", rc)
		w := windowed.Result("mcf", rc)
		relErr := 100 * math.Abs(s.IPC-f.IPC) / f.IPC
		winErr := 100 * math.Abs(w.IPC-f.IPC) / f.IPC
		t.Logf("mcf/%s: full IPC %.3f, sampled IPC %.3f (%.1f%% error), windowed IPC %.3f (%.1f%% error)",
			rc.Label(), f.IPC, s.IPC, relErr, w.IPC, winErr)
		if relErr > tolerancePct {
			t.Errorf("mcf/%s: sampled IPC %.3f vs full %.3f: %.1f%% error exceeds %d%%",
				rc.Label(), s.IPC, f.IPC, relErr, tolerancePct)
		}
		if winErr > tolerancePct {
			t.Errorf("mcf/%s: windowed IPC %.3f vs full %.3f: %.1f%% error exceeds %d%%",
				rc.Label(), w.IPC, f.IPC, winErr, tolerancePct)
		}
		// Each window's Run overshoots by at most one commit group, so the
		// merged total lands within a few uops of the full-run budget.
		if s.Stats.Committed < opts.MeasureUops || s.Stats.Committed > opts.MeasureUops+64 {
			t.Errorf("mcf/%s: sampled measured %d uops, want ~%d", rc.Label(), s.Stats.Committed, opts.MeasureUops)
		}
		if w.Stats.Committed < 60_000 || w.Stats.Committed > 60_064 {
			t.Errorf("mcf/%s: windowed measured %d uops, want ~60000", rc.Label(), w.Stats.Committed)
		}
	}
}

// TestSampledIntervalErrorID checks the error-surfacing satellite: a failing
// detailed window is reported as an error naming its interval id instead of
// killing the worker or being swallowed.
func TestSampledIntervalErrorID(t *testing.T) {
	r := NewRunner(Options{MeasureUops: 2_000})
	p := workload.MustLoad("mcf")
	// A checkpoint with no memory image makes the detailed core fault on
	// its first load — a stand-in for any interval-local simulator bug.
	ir := r.runInterval("mcf", "Base", core.DefaultConfig(), p, checkpoint{id: 3, warmup: 500, measure: 500,
		st: prog.ArchState{Index: 0}})
	if ir.err == nil {
		t.Fatal("broken interval produced no error")
	}
	if !strings.Contains(ir.err.Error(), "interval 3") {
		t.Fatalf("interval error does not name its id: %v", ir.err)
	}
}
