// Package harness regenerates every table and figure of the paper's
// evaluation: it runs (benchmark, configuration) pairs on the simulator,
// memoizes the results, and formats them as text tables matching the rows
// and series the paper reports. cmd/runahead-sweep and the repository's
// bench_test.go are thin wrappers around this package.
package harness

import (
	"fmt"
	"sync"

	"runaheadsim/internal/core"
	"runaheadsim/internal/energy"
	"runaheadsim/internal/simcheck"
	"runaheadsim/internal/stats"
	"runaheadsim/internal/workload"
)

// RunConfig selects one simulated system (one bar color in the figures).
type RunConfig struct {
	Mode         core.Mode
	Enhancements bool
	Prefetch     bool
	DepTrack     bool

	// Sensitivity overrides (0 = Table 1 value). MaxChain sets both the
	// runahead buffer size and the chain-length cap; CCEntries sets the
	// chain cache entry count.
	MaxChain  int
	CCEntries int

	// PFKind selects the prefetch engine when Prefetch is set: "" or
	// "stream" for the paper's stream prefetcher, "delta" for the
	// region-delta (stride) alternative.
	PFKind string
}

// The systems evaluated in Section 6.
var (
	Baseline    = RunConfig{Mode: core.ModeNone}
	Runahead    = RunConfig{Mode: core.ModeTraditional}
	RunaheadEnh = RunConfig{Mode: core.ModeTraditional, Enhancements: true}
	Buffer      = RunConfig{Mode: core.ModeBuffer}
	BufferCC    = RunConfig{Mode: core.ModeBufferCC}
	Hybrid      = RunConfig{Mode: core.ModeHybrid, Enhancements: true}
)

// WithPF returns the configuration with the stream prefetcher enabled.
func (rc RunConfig) WithPF() RunConfig { rc.Prefetch = true; return rc }

// WithDepTrack returns the configuration with Figure 2-5 instrumentation.
func (rc RunConfig) WithDepTrack() RunConfig { rc.DepTrack = true; return rc }

// Label names the configuration the way the figures do.
func (rc RunConfig) Label() string {
	var s string
	switch {
	case rc.Mode == core.ModeNone && rc.Prefetch:
		return "PF"
	case rc.Mode == core.ModeNone:
		return "Base"
	case rc.Mode == core.ModeTraditional && rc.Enhancements:
		s = "RA-Enh"
	case rc.Mode == core.ModeTraditional:
		s = "RA"
	case rc.Mode == core.ModeBuffer:
		s = "RB"
	case rc.Mode == core.ModeBufferCC:
		s = "RB+CC"
	default:
		s = "Hybrid"
	}
	if rc.Prefetch {
		s += "+PF"
	}
	return s
}

// Result summarizes one (benchmark, configuration) run.
type Result struct {
	Bench  string
	Config RunConfig

	Stats  *core.Stats
	Energy energy.Breakdown

	// Timeline holds the run's interval samples when the runner's
	// TimelineInterval option is set (nil otherwise).
	Timeline *stats.Timeline

	IPC          float64
	MPKI         float64
	MemStallPct  float64
	DRAMRequests uint64

	// Chains holds Figure 7-style renderings of the dependence chains left
	// in the chain cache at the end of the run (at most two).
	Chains []string

	// Sampling describes how this result was sampled (nil for full-detail
	// runs): the mode, the detailed-uop cost, and — in phase mode — the
	// phase structure and per-metric confidence intervals.
	Sampling *SamplingInfo

	// Provenance records how this result was produced: ProvenanceDetailed
	// for simulator runs (full-detail or sampled), ProvenanceTwin for
	// analytical-twin predictions under a screened sweep.
	Provenance string
}

// Options tunes harness runs. MeasureUops trades fidelity for speed; the
// paper simulated 50M-instruction SimPoints, but the synthetic kernels are
// phase-free so their steady state emerges within a few hundred thousand.
type Options struct {
	MeasureUops uint64
	WarmupUops  uint64 // 0 = automatic (longer for small-footprint benchmarks)
	// Benchmarks restricts figures to a subset (nil = the figure's full
	// set). Used by the scaled-down `go test -bench` harness.
	Benchmarks []string
	// Progress is invoked once per simulated run. During Prewarm it is
	// called from worker goroutines concurrently; it must be safe for that.
	Progress func(bench, config string)

	// Monitor, when non-nil, receives live progress from every simulated
	// run: run boundaries, phase transitions, and periodic committed-uop
	// updates (every progressChunk uops, via chunked Run calls that are
	// bit-identical to one call). Calls arrive from worker goroutines
	// concurrently. telemetry.Tracker implements this interface.
	Monitor Monitor

	// Sample, when non-nil, replaces each full detailed run with the
	// sampled-interval engine: a functional fast-forward drops periodic
	// architectural checkpoints, detailed intervals are simulated from them
	// (warmup + measure each), and their statistics are merged. Timelines
	// and simcheck full-run checking are unavailable in this mode (each
	// interval still runs the resumed-oracle checker when Check is set).
	Sample *SampleOptions

	// TimelineInterval, when positive, attaches an interval sampler to every
	// measured run; each Result then carries a Timeline. TimelineSamples
	// bounds the retained ring (0 = 4096).
	TimelineInterval int64
	TimelineSamples  int

	// Check attaches the simcheck sanitizer (lockstep architectural oracle
	// plus per-cycle structural invariants) to every run; a violation
	// panics with full context. Binaries built with the simcheck build tag
	// force this on for all runs.
	Check bool

	// FlightDumpDir, when non-empty, is where a dying run writes its flight
	// recorder — the core's ring of recent trace events — as JSONL before
	// the panic propagates. Empty disables dumping.
	FlightDumpDir string

	// WatchdogCycles, when nonzero, overrides the core's deadlock watchdog
	// for every run: positive sets the no-progress cycle budget, negative
	// disables the watchdog entirely. Zero keeps the Table 1 default.
	WatchdogCycles int64
}

// DefaultOptions is the sweep default.
func DefaultOptions() Options {
	return Options{MeasureUops: 150_000}
}

func (o Options) warmup(class workload.Class) uint64 {
	if o.WarmupUops > 0 {
		return o.WarmupUops
	}
	if class == workload.Low {
		// Small footprints must wrap before steady-state MPKI emerges.
		return 500_000
	}
	return 100_000
}

// Runner memoizes simulation runs across figures, since most figures share
// configurations. It is safe for concurrent use: parallel Result calls for
// distinct pairs simulate concurrently, while calls for the same pair share
// one run (single-flight).
type Runner struct {
	opts Options

	mu       sync.Mutex
	cache    map[string]*entry
	mixCache map[string]*mixEntry
	profiles map[string]*profEntry

	// screen, when set (see SetScreen), routes non-promoted pairs to the
	// analytical twin instead of the detailed simulator.
	screen *Screen

	// profileWallNanos accumulates wall time spent in interpreter-speed
	// profiling passes (BBV phase profiling, twin profiling), read via
	// ProfileWallSec. Accessed atomically.
	profileWallNanos int64

	// Planning mode (see Plan): Result records the requested pair and
	// returns a placeholder instead of simulating.
	planning bool
	planSeen map[string]bool
	planned  []PlannedRun
}

// entry is one memoized run; once gates the single simulation.
type entry struct {
	once sync.Once
	res  *Result
}

// PlannedRun names one (benchmark, configuration) pair a set of experiments
// will request, in first-request order.
type PlannedRun struct {
	Bench  string
	Config RunConfig
}

// NewRunner returns a Runner with the given options.
func NewRunner(opts Options) *Runner {
	if opts.MeasureUops == 0 {
		opts.MeasureUops = DefaultOptions().MeasureUops
	}
	return &Runner{
		opts:     opts,
		cache:    make(map[string]*entry),
		mixCache: make(map[string]*mixEntry),
		profiles: make(map[string]*profEntry),
	}
}

// key builds the memo-cache key for one (benchmark, configuration) pair.
// Every field is rendered explicitly — the mode as its numeric value, bools
// as %t — so two distinct configurations can never collide through a shared
// String() rendering (e.g. out-of-range modes both printing "unknown").
func key(bench string, rc RunConfig) string {
	return fmt.Sprintf("%s|%d|%t|%t|%t|%d|%d|%s",
		bench, uint8(rc.Mode), rc.Enhancements, rc.Prefetch, rc.DepTrack, rc.MaxChain, rc.CCEntries, rc.PFKind)
}

// Result runs (or returns the cached run of) one benchmark under one
// configuration.
func (r *Runner) Result(bench string, rc RunConfig) *Result {
	k := key(bench, rc)
	r.mu.Lock()
	if r.planning {
		if !r.planSeen[k] {
			r.planSeen[k] = true
			r.planned = append(r.planned, PlannedRun{Bench: bench, Config: rc})
		}
		r.mu.Unlock()
		return placeholderResult(bench, rc)
	}
	e := r.cache[k]
	if e == nil {
		e = &entry{}
		r.cache[k] = e
	}
	r.mu.Unlock()
	e.once.Do(func() { e.res = r.run(bench, rc) })
	return e.res
}

// Plan invokes fn with the runner in planning mode: every Result call inside
// records its (benchmark, configuration) pair and returns a placeholder
// without simulating. It returns the distinct pairs in first-request order —
// the exact work list a later Prewarm needs. Placeholder-derived output must
// be discarded; fn is for discovering the run set, not for rendering.
func (r *Runner) Plan(fn func(*Runner)) []PlannedRun {
	r.mu.Lock()
	r.planning = true
	r.planSeen = make(map[string]bool)
	r.planned = nil
	r.mu.Unlock()
	fn(r)
	r.mu.Lock()
	runs := r.planned
	r.planning = false
	r.planSeen = nil
	r.planned = nil
	r.mu.Unlock()
	return runs
}

// Prewarm simulates the given runs on a pool of `workers` goroutines,
// filling the memo cache so subsequent Result calls return instantly. Since
// results are memoized by pair, a prewarmed sweep renders byte-identically
// to a sequential one — parallelism changes only who computes each entry.
func (r *Runner) Prewarm(runs []PlannedRun, workers int) {
	if workers < 1 {
		workers = 1
	}
	if workers > len(runs) {
		workers = len(runs)
	}
	ch := make(chan PlannedRun)
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for pr := range ch {
				r.Result(pr.Bench, pr.Config)
			}
		}()
	}
	for _, pr := range runs {
		ch <- pr
	}
	close(ch)
	wg.Wait()
}

// placeholderResult stands in for a real run during planning. Histograms are
// allocated and denominators nonzero so figure builders that dereference or
// divide don't trip; everything derived from it is discarded.
func placeholderResult(bench string, rc RunConfig) *Result {
	return &Result{Bench: bench, Config: rc, Stats: core.NewPlaceholderStats(), IPC: 1}
}

// cfgFor translates a RunConfig into a full core configuration with the
// runner's overrides applied.
func (r *Runner) cfgFor(rc RunConfig) core.Config {
	cfg := configFor(rc)
	if wd := r.opts.WatchdogCycles; wd > 0 {
		cfg.WatchdogCycles = wd
	} else if wd < 0 {
		cfg.WatchdogCycles = 0
	}
	return cfg
}

// configFor translates a RunConfig into a full core configuration.
func configFor(rc RunConfig) core.Config {
	cfg := core.DefaultConfig()
	cfg.Mode = rc.Mode
	cfg.Enhancements = rc.Enhancements
	cfg.Mem.EnablePrefetch = rc.Prefetch
	cfg.DepTrack = rc.DepTrack
	if rc.MaxChain > 0 {
		cfg.MaxChainLength = rc.MaxChain
		cfg.RunaheadBufferSize = rc.MaxChain
	}
	if rc.CCEntries > 0 {
		cfg.ChainCacheEntries = rc.CCEntries
	}
	if rc.PFKind != "" {
		cfg.Mem.PrefetchKind = rc.PFKind
	}
	return cfg
}

// run simulates one (benchmark, configuration) pair — full-detail, sampled,
// or (under an active screen, for non-promoted pairs) twin-predicted.
func (r *Runner) run(bench string, rc RunConfig) *Result {
	spec, ok := workload.SpecOf(bench)
	if !ok {
		panic(fmt.Sprintf("harness: unknown benchmark %q", bench))
	}
	r.mu.Lock()
	sc := r.screen
	r.mu.Unlock()
	if sc != nil && !sc.WantsDetailed(bench, rc) {
		return r.twinRun(sc, bench, rc)
	}
	label := rc.Label()
	if r.opts.Progress != nil {
		r.opts.Progress(bench, label)
	}
	if m := r.opts.Monitor; m != nil {
		m.RunStart(bench, label)
		defer m.RunDone(bench, label)
	}
	if r.opts.Sample != nil {
		res, err := r.runSampled(bench, rc, spec)
		if err != nil {
			panic(fmt.Sprintf("harness: sampled run %s/%s: %v", bench, label, err))
		}
		res.Provenance = ProvenanceDetailed
		return res
	}
	cfg := r.cfgFor(rc)

	p := workload.MustLoad(bench)
	c := core.New(cfg, p)
	defer r.dumpFlightOnPanic(c, "flight-"+bench+"-"+label)
	var chk *simcheck.Checker
	if r.opts.Check || simcheck.TagEnabled {
		chk = simcheck.Attach(c, p, simcheck.Options{})
	}
	m := r.opts.Monitor
	var report func(uint64)
	if m != nil {
		report = func(done uint64) { m.Progress(bench, label, -1, done) }
	}
	warmup := r.opts.warmup(spec.Class)
	if m != nil {
		m.Phase(bench, label, -1, "warmup", warmup)
	}
	chunkRun(c, warmup, report)
	c.ResetStats()
	var tl *stats.Timeline
	if r.opts.TimelineInterval > 0 {
		n := r.opts.TimelineSamples
		if n <= 0 {
			n = 4096
		}
		tl = stats.NewTimeline(r.opts.TimelineInterval, n)
		c.SetTimeline(tl)
	}
	if m != nil {
		m.Phase(bench, label, -1, "measure", r.opts.MeasureUops)
	}
	st := chunkRun(c, r.opts.MeasureUops, report)
	if m != nil {
		m.Done(bench, label, -1)
	}
	if chk != nil {
		chk.Finish()
	}

	res := &Result{
		Bench:        bench,
		Config:       rc,
		Stats:        st,
		Timeline:     tl,
		Provenance:   ProvenanceDetailed,
		Energy:       energy.Compute(energy.DefaultParams(), energy.Measure(c)),
		IPC:          st.IPC(),
		MPKI:         1000 * stats.Div(float64(c.Hierarchy().LLCDemandMisses), float64(st.Committed)),
		MemStallPct:  100 * stats.Div(float64(st.MemStallCycles), float64(st.Cycles)),
		DRAMRequests: c.Hierarchy().TotalDRAMRequests(),
	}
	for _, ch := range c.CachedChains() {
		ch := ch
		res.Chains = append(res.Chains, ch.String())
	}
	return res
}

// Options returns the runner's options.
func (r *Runner) Options() Options { return r.opts }
