package harness

import (
	"testing"

	"runaheadsim/internal/core"
)

// TestKeyCollisionResistance is the regression test for the memo-key
// hardening: configurations that render identically through String() paths
// (out-of-range modes all print "unknown") or that could concatenate into
// the same digit string must still get distinct cache keys.
func TestKeyCollisionResistance(t *testing.T) {
	a := RunConfig{Mode: core.Mode(200)}
	b := RunConfig{Mode: core.Mode(201)}
	if a.Mode.String() != b.Mode.String() {
		t.Fatalf("precondition: out-of-range modes should share a String() rendering, got %q vs %q",
			a.Mode.String(), b.Mode.String())
	}
	if key("mcf", a) == key("mcf", b) {
		t.Error("distinct out-of-range modes must not share a cache key")
	}

	// Digit-concatenation hazard: MaxChain=1,CCEntries=12 vs MaxChain=11,
	// CCEntries=2 both spell "112" without a separator.
	c := BufferCC
	c.MaxChain, c.CCEntries = 1, 12
	d := BufferCC
	d.MaxChain, d.CCEntries = 11, 2
	if key("mcf", c) == key("mcf", d) {
		t.Error("structure-size overrides must not concatenate into the same key")
	}

	// Bench/field boundary: the bench name must not bleed into the config
	// fields.
	if key("mcf", Baseline) == key("mcf|0", Baseline) {
		t.Error("bench name must be delimited from config fields")
	}
}

// screenBenches is a small cross-class calibration set: two memory-intensive
// benches and two low-intensity ones.
var screenBenches = []string{"mcf", "zeusmp", "calculix", "gamess"}

// TestCalibrateScreenPromoteRoundTrip exercises the whole screening tier on
// a reduced matrix: calibrate a twin, build a screen, and check promotion
// reasons, provenance tagging, and — the acceptance property — that promoted
// pairs are bit-identical to a fresh full-detail runner.
func TestCalibrateScreenPromoteRoundTrip(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	opts := Options{MeasureUops: 8_000, WarmupUops: 8_000, Benchmarks: screenBenches}
	r := NewRunner(opts)
	model, points, err := r.Calibrate(screenBenches, nil, 4)
	if err != nil {
		t.Fatal(err)
	}
	if want := len(screenBenches) * len(CalibrationConfigs()); len(points) != want {
		t.Fatalf("calibration points = %d, want %d", len(points), want)
	}
	if model.Fingerprint != TwinFingerprint() {
		t.Fatal("model fingerprint must match the machine")
	}
	if len(model.Scales) != len(screenBenches) {
		t.Fatalf("model has %d workload anchors, want %d", len(model.Scales), len(screenBenches))
	}
	if r.ProfileWallSec() <= 0 {
		t.Error("profiling wall time was not accounted")
	}

	var plan []PlannedRun
	for _, b := range screenBenches {
		for _, rc := range CalibrationConfigs() {
			plan = append(plan, PlannedRun{Bench: b, Config: rc})
		}
	}
	// TopK=1 and a huge uncertainty threshold so some benches stay on the
	// twin; mcf is pinned detailed as figure-critical.
	sc, err := BuildScreen(r, plan, ScreenOptions{Model: model, TopK: 1, UncertainPct: 1e9, Critical: []string{"mcf"}}, 4)
	if err != nil {
		t.Fatal(err)
	}
	rows := map[string]ScreenRow{}
	for _, row := range sc.Rows() {
		rows[row.Bench] = row
	}
	if len(rows) != len(screenBenches) {
		t.Fatalf("screen rows = %d, want %d", len(rows), len(screenBenches))
	}
	if got := rows["mcf"]; got.Reason != "critical" || got.Provenance != ProvenanceDetailed {
		t.Fatalf("mcf row = %+v, want critical/detailed", got)
	}
	var twinBenches []string
	for _, b := range screenBenches {
		if rows[b].Provenance == ProvenanceTwin {
			twinBenches = append(twinBenches, b)
		}
	}
	if len(twinBenches) == 0 {
		t.Fatal("no bench stayed on the twin; the round trip tests nothing")
	}
	// Out-of-domain configs force detail even on twin benches.
	if !sc.WantsDetailed(twinBenches[0], Baseline.WithPF()) {
		t.Error("prefetch configs must always run detailed")
	}
	if sc.WantsDetailed(twinBenches[0], Baseline) {
		t.Error("non-promoted bench under a modeled config must stay on the twin")
	}

	// A fresh screened runner must tag provenance on both paths and agree
	// bit-identically with full detail on every promoted pair.
	scr := NewRunner(opts)
	scr.SetScreen(sc)
	detail := NewRunner(opts)
	for _, pr := range plan {
		got := scr.Result(pr.Bench, pr.Config)
		if sc.WantsDetailed(pr.Bench, pr.Config) {
			if got.Provenance != ProvenanceDetailed {
				t.Fatalf("%s/%s: provenance %q, want detailed", pr.Bench, pr.Config.Label(), got.Provenance)
			}
			want := detail.Result(pr.Bench, pr.Config)
			if got.Stats.Cycles != want.Stats.Cycles || got.IPC != want.IPC {
				t.Fatalf("%s/%s: screened detailed run diverged: %d cycles vs %d",
					pr.Bench, pr.Config.Label(), got.Stats.Cycles, want.Stats.Cycles)
			}
			continue
		}
		if got.Provenance != ProvenanceTwin {
			t.Fatalf("%s/%s: provenance %q, want twin", pr.Bench, pr.Config.Label(), got.Provenance)
		}
		// Twin results keep the detailed invariants the report relies on.
		var sum int64
		for _, v := range got.Stats.CPIStack {
			sum += v
		}
		if sum != got.Stats.Cycles {
			t.Fatalf("%s/%s: twin CPI stack sums to %d, cycles are %d",
				pr.Bench, pr.Config.Label(), sum, got.Stats.Cycles)
		}
		if got.IPC <= 0 || got.Stats.Cycles <= 0 {
			t.Fatalf("%s/%s: degenerate twin result %+v", pr.Bench, pr.Config.Label(), got)
		}
	}

	// The provenance table mirrors the decisions.
	tb := sc.Table()
	if len(tb.Rows) != len(screenBenches) {
		t.Fatalf("screen table rows = %d, want %d", len(tb.Rows), len(screenBenches))
	}
}

// TestBuildScreenRejectsForeignModel checks the fingerprint gate: a model
// calibrated for another machine must be refused, not silently applied.
func TestBuildScreenRejectsForeignModel(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	r := NewRunner(Options{MeasureUops: 8_000, WarmupUops: 8_000, Benchmarks: []string{"mcf"}})
	model, _, err := r.Calibrate([]string{"mcf"}, nil, 2)
	if err != nil {
		t.Fatal(err)
	}
	model.Fingerprint++
	if _, err := BuildScreen(r, []PlannedRun{{Bench: "mcf", Config: Baseline}}, ScreenOptions{Model: model}, 2); err == nil {
		t.Fatal("mismatched fingerprint must be rejected")
	}
}
