package harness

import (
	"encoding/json"
	"math"
	"reflect"
	"strings"
	"sync"
	"testing"

	"runaheadsim/internal/phases"
	"runaheadsim/internal/snapshot"
)

// TestPlanEvenTiling checks the interval placement over awkward
// region/interval combinations: the strata must tile the measured region
// exactly (no overrun past the region end, no double-counted uops), warmups
// must clamp at the region start, and weights must be the unit rational.
func TestPlanEvenTiling(t *testing.T) {
	cases := []struct {
		name          string
		full, measure uint64
		so            SampleOptions
	}{
		{"divisible", 100_000, 120_000, SampleOptions{Intervals: 4}},
		{"remainder", 100_000, 100_001, SampleOptions{Intervals: 4}},
		{"prime-region", 50_000, 99_991, SampleOptions{Intervals: 7}},
		{"more-intervals-than-uops", 1_000, 3, SampleOptions{Intervals: 8}},
		{"one-interval", 1_000, 50_000, SampleOptions{Intervals: 1}},
		{"window-capped", 100_000, 120_000, SampleOptions{Intervals: 4, WindowUops: 10_000}},
		{"window-above-stratum", 100_000, 120_000, SampleOptions{Intervals: 4, WindowUops: 1 << 40}},
		{"warmup-exceeds-start", 10, 80_000, SampleOptions{Intervals: 4, WarmupUops: 1 << 30}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			plan := planEven(tc.full, tc.measure, tc.so)
			if len(plan) == 0 {
				t.Fatal("empty plan")
			}
			end := tc.full + tc.measure
			var covered uint64
			prevEnd := tc.full
			for i, ck := range plan {
				if ck.id != i {
					t.Errorf("checkpoint %d has id %d", i, ck.id)
				}
				if ck.wnum != 1 || ck.wden != 1 {
					t.Errorf("interval %d: even-mode weight %d/%d, want 1/1", i, ck.wnum, ck.wden)
				}
				if ck.start < prevEnd {
					t.Errorf("interval %d starts at %d inside the previous stratum (ends %d): double-counted uops", i, ck.start, prevEnd)
				}
				if ck.start+ck.measure > end {
					t.Errorf("interval %d overruns the region: [%d, %d) vs end %d", i, ck.start, ck.start+ck.measure, end)
				}
				if ck.warmup > ck.start {
					t.Errorf("interval %d: warmup %d exceeds start %d (fast-forward would wrap)", i, ck.warmup, ck.start)
				}
				covered += ck.measure
				prevEnd = ck.start + ck.measure
			}
			if tc.so.WindowUops == 0 || tc.so.WindowUops >= tc.measure {
				// Full-parity plans must measure the whole region exactly.
				want := tc.measure
				if tc.so.WindowUops > 0 && tc.so.WindowUops < want {
					want = tc.so.WindowUops
				}
				if covered != want && tc.so.WindowUops == 0 {
					t.Errorf("strata cover %d uops, want %d", covered, tc.measure)
				}
			}
			last := plan[len(plan)-1]
			if lastEnd := last.start + last.measure; tc.so.WindowUops == 0 && lastEnd != end {
				t.Errorf("last window ends at %d, want region end %d", lastEnd, end)
			}
		})
	}
}

// TestCheckpointFFStartSaturates is the regression test for the wrapped
// fast-forward progress goal: a warmup larger than the window offset must
// clamp the goal to zero, never wrap around uint64.
func TestCheckpointFFStartSaturates(t *testing.T) {
	cases := []struct {
		start, warmup, want uint64
	}{
		{100_000, 50_000, 50_000},
		{100_000, 100_000, 0},
		{10, 1 << 30, 0},
		{0, 1, 0},
		{0, 0, 0},
	}
	for _, tc := range cases {
		ck := checkpoint{start: tc.start, warmup: tc.warmup}
		if got := ck.ffStart(); got != tc.want {
			t.Errorf("ffStart(start=%d, warmup=%d) = %d, want %d", tc.start, tc.warmup, got, tc.want)
		}
		if ck.ffStart() > math.MaxUint64/2 {
			t.Errorf("ffStart(start=%d, warmup=%d) wrapped: %d", tc.start, tc.warmup, ck.ffStart())
		}
	}
}

// goalMonitor records every Phase goal reported for the planner
// pseudo-interval (-1).
type goalMonitor struct {
	mu    sync.Mutex
	goals []uint64
}

func (g *goalMonitor) RunStart(_, _ string)              {}
func (g *goalMonitor) RunDone(_, _ string)               {}
func (g *goalMonitor) Progress(_, _ string, _ int, _ uint64) {}
func (g *goalMonitor) Done(_, _ string, _ int)           {}
func (g *goalMonitor) Phase(_, _ string, interval int, _ string, total uint64) {
	if interval == -1 {
		g.mu.Lock()
		g.goals = append(g.goals, total)
		g.mu.Unlock()
	}
}

// TestSampledProgressGoalNoWrap runs the sampled engine with a warmup far
// larger than the first checkpoint offset and checks no telemetry goal
// wrapped around uint64 (the /progress regression).
func TestSampledProgressGoalNoWrap(t *testing.T) {
	gm := &goalMonitor{}
	opts := Options{MeasureUops: 20_000, WarmupUops: 4_000, Monitor: gm,
		Sample: &SampleOptions{Intervals: 4, WarmupUops: 1 << 40, Workers: 2}}
	r := NewRunner(opts)
	res := r.Result("mcf", Baseline)
	if res.Stats.Committed == 0 {
		t.Fatal("sampled run committed nothing")
	}
	gm.mu.Lock()
	defer gm.mu.Unlock()
	if len(gm.goals) == 0 {
		t.Fatal("monitor saw no planner-interval phases")
	}
	for _, goal := range gm.goals {
		if goal > math.MaxUint64/2 {
			t.Errorf("telemetry phase goal wrapped: %d", goal)
		}
	}
}

// synthPlan builds a phase plan with two planted phases over a 16-window
// grid: windows alternate between two behaviors in a 3:1 uop-weight split.
// When ragged, the last grid window carries a remainder (as profilePhases
// produces when the region doesn't divide evenly), which makes the chunk
// weights non-uniform.
func synthPlan(t *testing.T, ragged bool) *phases.Plan {
	t.Helper()
	const w = 16
	windows := make([]phases.Window, w)
	vecs := make([]phases.Vector, w)
	for i := 0; i < w; i++ {
		windows[i] = phases.Window{Start: uint64(100_000 + i*10_000), Len: 10_000}
		if ragged && i == w-1 {
			windows[i].Len = 15_000
		}
		if i%4 == 3 {
			vecs[i] = phases.Vector{0, 1, 0}
		} else {
			vecs[i] = phases.Vector{1, 0, 0}
		}
	}
	pl := phases.Build(windows, vecs, 4, 0)
	if pl.K() != 2 {
		t.Fatalf("synthetic plan clustered into %d phases, want 2", pl.K())
	}
	return pl
}

// TestPlanFromPhasesBudgetAndWeights checks the phase-mode window planner:
// full interval budget spent, detailed cost never above even mode's, window
// weights summing exactly to the region, ascending start order, and no
// window overrunning the region end. The ragged grid keeps the chunk weights
// distinct; a uniform-weight plan is exercised by
// TestPlanFromPhasesUniformCollapse instead.
func TestPlanFromPhasesBudgetAndWeights(t *testing.T) {
	pl := synthPlan(t, true)
	so := SampleOptions{Mode: SamplePhase, Intervals: 4, WarmupUops: 5_000, WindowUops: 8_000}
	regionEnd := uint64(100_000 + 15*10_000 + 15_000)
	cks := planFromPhases(pl, so, regionEnd)

	if len(cks) != so.Intervals {
		t.Fatalf("planner spent %d windows of the %d budget", len(cks), so.Intervals)
	}
	even := planEven(100_000, 165_000, so)
	if du, de := detailedUops(cks), detailedUops(even); du > de {
		t.Errorf("phase plan costs %d detailed uops, above even mode's %d", du, de)
	}
	var weight uint64
	var prevStart uint64
	for i, ck := range cks {
		if ck.id != i {
			t.Errorf("checkpoint %d has id %d", i, ck.id)
		}
		if i > 0 && ck.start <= prevStart {
			t.Errorf("checkpoint %d start %d not after previous %d (fast-forward cannot stream)", i, ck.start, prevStart)
		}
		prevStart = ck.start
		if ck.start+ck.measure > regionEnd {
			t.Errorf("checkpoint %d overruns region end: [%d, %d) vs %d", i, ck.start, ck.start+ck.measure, regionEnd)
		}
		// The scaled contribution is measure * wnum/wden = the chunk weight.
		weight += ck.wnum
	}
	if weight != 165_000 {
		t.Errorf("window weights sum to %d uops, want the whole region (165000): no double-counting, no gaps", weight)
	}
}

// TestPlanFromPhasesUniformCollapse checks that a plan whose windows all
// carry the same weight ratio collapses to unit weights: uniform weights
// cancel in every ratio metric, and unit weights route the merge through the
// unscaled (rounding-free) path, so such plans stay bit-compatible with even
// mode instead of differing by per-counter rounding.
func TestPlanFromPhasesUniformCollapse(t *testing.T) {
	pl := synthPlan(t, false) // equal grid windows -> equal chunk weights
	so := SampleOptions{Mode: SamplePhase, Intervals: 4, WarmupUops: 5_000, WindowUops: 8_000}
	cks := planFromPhases(pl, so, 100_000+16*10_000)
	if len(cks) != so.Intervals {
		t.Fatalf("planner spent %d windows of the %d budget", len(cks), so.Intervals)
	}
	for i, ck := range cks {
		if ck.wnum != 1 || ck.wden != 1 {
			t.Errorf("checkpoint %d: uniform plan kept scaled weight %d/%d, want 1/1", i, ck.wnum, ck.wden)
		}
	}
}

// TestPhaseSampledWithinCI is the weighted-merge property test: on seed
// kernels, the phase-weighted IPC reproduces the full-detail IPC within the
// reported confidence interval.
func TestPhaseSampledWithinCI(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	opts := Options{MeasureUops: 120_000, WarmupUops: 60_000}
	full := NewRunner(opts)
	popts := opts
	popts.Sample = &SampleOptions{Mode: SamplePhase, Intervals: 4, WarmupUops: 20_000, WindowUops: 15_000, Workers: 4}
	phase := NewRunner(popts)

	for _, bench := range []string{"mcf", "libquantum"} {
		for _, rc := range []RunConfig{Baseline, BufferCC} {
			f := full.Result(bench, rc)
			p := phase.Result(bench, rc)
			if p.Sampling == nil || p.Sampling.Mode != SamplePhase {
				t.Fatalf("%s/%s: phase-sampled result carries no phase SamplingInfo: %+v", bench, rc.Label(), p.Sampling)
			}
			ci := p.Sampling.CI("IPC")
			if ci == nil {
				t.Fatalf("%s/%s: no IPC confidence interval", bench, rc.Label())
			}
			t.Logf("%s/%s: full IPC %.4f, phase IPC %.4f, CI [%.4f, %.4f], %d phases, dispersion %.4f",
				bench, rc.Label(), f.IPC, p.IPC, ci.Lo, ci.Hi, p.Sampling.Phases, p.Sampling.Dispersion)
			if math.Abs(ci.Mean-p.IPC) > 1e-9 {
				t.Errorf("%s/%s: CI mean %.6f disagrees with merged IPC %.6f", bench, rc.Label(), ci.Mean, p.IPC)
			}
			if ci.Lo > ci.Hi || ci.Lo < 0 {
				t.Errorf("%s/%s: malformed CI [%v, %v]", bench, rc.Label(), ci.Lo, ci.Hi)
			}
			if f.IPC < ci.Lo || f.IPC > ci.Hi {
				t.Errorf("%s/%s: full-detail IPC %.4f outside reported CI [%.4f, %.4f]",
					bench, rc.Label(), f.IPC, ci.Lo, ci.Hi)
			}
		}
	}
}

// statsBytes serializes merged run statistics for byte-level comparison.
func statsBytes(t *testing.T, res *Result) []byte {
	t.Helper()
	var w snapshot.Writer
	if err := res.Stats.SnapshotTo(&w); err != nil {
		t.Fatal(err)
	}
	return w.Bytes()
}

// TestPhaseSampledDeterministic is the clustering determinism test: two
// independent phase-sampled runs of the same pair must agree bit-for-bit —
// same phase assignments and weights, byte-identical merged counters.
func TestPhaseSampledDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	mk := func() *Result {
		opts := Options{MeasureUops: 80_000, WarmupUops: 40_000,
			Sample: &SampleOptions{Mode: SamplePhase, Intervals: 4, WarmupUops: 10_000, WindowUops: 10_000, Workers: 4}}
		return NewRunner(opts).Result("mcf", BufferCC)
	}
	a, b := mk(), mk()
	if !reflect.DeepEqual(a.Sampling, b.Sampling) {
		t.Errorf("SamplingInfo differs between identical runs:\n%+v\n%+v", a.Sampling, b.Sampling)
	}
	ab, bb := statsBytes(t, a), statsBytes(t, b)
	if string(ab) != string(bb) {
		t.Error("merged counters differ byte-for-byte between identical phase-sampled runs")
	}
	if a.IPC != b.IPC || a.MPKI != b.MPKI || a.DRAMRequests != b.DRAMRequests {
		t.Errorf("derived metrics differ: IPC %v/%v MPKI %v/%v DRAM %v/%v",
			a.IPC, b.IPC, a.MPKI, b.MPKI, a.DRAMRequests, b.DRAMRequests)
	}
}

// TestReportJSONNoNaN is the zero-denominator regression test: a claims
// report over a benchmark subset that never enters runahead (an empty
// medium+high set) must marshal cleanly — encoding/json rejects NaN and Inf,
// so any unguarded 0/0 in the claim math fails this test.
func TestReportJSONNoNaN(t *testing.T) {
	r := NewRunner(Options{MeasureUops: 1_000, Benchmarks: []string{"povray"}})
	tb := Report(r)
	if _, err := json.Marshal(tb); err != nil {
		t.Fatalf("claims report with empty medium+high subset does not marshal: %v", err)
	}
	for _, row := range tb.Rows {
		for _, cell := range row {
			if strings.Contains(cell, "NaN") || strings.Contains(cell, "Inf") {
				t.Fatalf("claims table carries %q: %v", cell, row)
			}
		}
	}
}
