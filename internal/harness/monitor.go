package harness

import (
	"fmt"
	"os"
	"path/filepath"

	"runaheadsim/internal/core"
)

// Monitor receives live progress from simulated runs. Implementations must
// be safe for concurrent use: sampled intervals and prewarmed sweeps report
// from many worker goroutines at once. telemetry.Tracker satisfies this
// interface structurally, so neither package imports the other.
type Monitor interface {
	// RunStart and RunDone bracket one (benchmark, configuration) run.
	// RunDone fires even when the run dies (deferred), so live views don't
	// show ghosts after a crash.
	RunStart(bench, config string)
	RunDone(bench, config string)
	// Phase reports one unit of work entering a phase — "bbv-profile",
	// "fast-forward", "warmup", or "measure" — with its committed-uop goal
	// (0 = unknown). interval is the sampled-interval id, or -1 for
	// full-detail runs and the planning/fast-forward passes.
	Phase(bench, config string, interval int, phase string, total uint64)
	// Progress reports committed uops completed within the current phase.
	Progress(bench, config string, interval int, done uint64)
	// Done reports the unit finished all its phases.
	Done(bench, config string, interval int)
}

// progressChunk is how often chunked runs report committed-uop progress. At
// typical simulation speeds this is a few reports per second per worker —
// cheap next to the simulation, frequent enough for a live view.
const progressChunk = 100_000

// chunkRun drives c to target committed uops (in the current stats epoch),
// reporting after every progressChunk. Chunking is invisible to the
// simulation: Run(target) loops until the committed count reaches target, so
// several calls are bit-identical to one — cycle counts, statistics, and
// snapshot bytes all match.
func chunkRun(c *core.Core, target uint64, report func(done uint64)) *core.Stats {
	if report == nil {
		return c.Run(target)
	}
	st := c.Stats()
	for t := uint64(progressChunk); t < target; t += progressChunk {
		st = c.Run(t)
		report(st.Committed)
	}
	st = c.Run(target)
	report(st.Committed)
	return st
}

// dumpFlightOnPanic is deferred around a detailed run: when the run dies it
// writes the core's flight recorder to FlightDumpDir and rethrows with the
// dump path appended, turning an opaque panic into an attributable event
// trace. With no dump directory (or an empty ring) the panic passes through
// untouched.
func (r *Runner) dumpFlightOnPanic(c *core.Core, name string) {
	rec := recover()
	if rec == nil {
		return
	}
	if path := writeFlightDump(r.opts.FlightDumpDir, name, c); path != "" {
		panic(fmt.Sprintf("%v\n  (flight recorder dumped to %s)", rec, path))
	}
	panic(rec)
}

// writeFlightDump writes c's flight-recorder ring to dir/<name>.jsonl,
// returning the path ("" when disabled, empty, or on I/O failure — a crash
// dump must never mask the crash).
func writeFlightDump(dir, name string, c *core.Core) string {
	fr := c.FlightRecorder()
	if dir == "" || fr == nil || fr.Len() == 0 {
		return ""
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return ""
	}
	path := filepath.Join(dir, name+".jsonl")
	f, err := os.Create(path)
	if err != nil {
		return ""
	}
	defer f.Close()
	if err := fr.WriteJSONL(f); err != nil {
		return ""
	}
	return path
}
