package harness

import (
	"fmt"
	"math"
	"sync/atomic"
	"time"

	"runaheadsim/internal/phases"
	"runaheadsim/internal/prog"
	"runaheadsim/internal/stats"
)

// SamplingInfo describes how a sampled result was produced, attached to
// Result so reports can show the accuracy/cost trade alongside the metrics.
type SamplingInfo struct {
	// Mode is SampleEven or SamplePhase.
	Mode string `json:"mode"`
	// Intervals is the number of detailed windows actually simulated.
	Intervals int `json:"intervals"`
	// DetailedUops is the total detailed-simulation cost (warmup + measured
	// uops across all windows) — the denominator of any accuracy-per-cost
	// comparison between modes.
	DetailedUops uint64 `json:"detailed_uops"`

	// BBVWindows, Phases and Dispersion are phase-mode only: the profiling
	// grid size, the clustered phase count, and the uop-weighted mean
	// Manhattan distance of windows to their phase centroid (0 = perfectly
	// homogeneous phases, 2 = maximally mixed).
	BBVWindows int     `json:"bbv_windows,omitempty"`
	Phases     int     `json:"phases,omitempty"`
	Dispersion float64 `json:"dispersion,omitempty"`

	// CIs are per-metric confidence intervals for the phase-weighted
	// estimates (empty in even mode, which has no phase structure to
	// resample over).
	CIs []SampleCI `json:"cis,omitempty"`
}

// SampleCI is a confidence interval for one phase-weighted metric estimate.
type SampleCI struct {
	Metric string  `json:"metric"`
	Mean   float64 `json:"mean"`
	Lo     float64 `json:"lo"`
	Hi     float64 `json:"hi"`
}

// CI returns the interval for the named metric, or nil when absent.
func (si *SamplingInfo) CI(metric string) *SampleCI {
	if si == nil {
		return nil
	}
	for i := range si.CIs {
		if si.CIs[i].Metric == metric {
			return &si.CIs[i]
		}
	}
	return nil
}

const (
	// ciZ is the normal 95% critical value applied to the jackknife
	// standard error.
	ciZ = 1.96
	// ciFloorRel is a relative floor added to every half-width: with a
	// handful of phases the jackknife variance underestimates badly (and is
	// zero for k=1), while sampling error below a few percent is
	// indistinguishable from warmup noise anyway.
	ciFloorRel = 0.03
	// ciTransientUops is the empirical cold-start transient scale. Every
	// detailed window re-warms microarchitectural state for WarmupUops, but
	// the deep structures (chain cache, runahead intervals in flight)
	// carry a residual transient on the order of a couple thousand uops
	// that biases every window the same way — invisible to the jackknife,
	// shrinking inversely with the measured window length. Calibrated so
	// the full-detail IPC of the seed kernels lands inside the interval
	// from 15k-uop windows (where the engine's error peaks near its
	// documented bound) down to full-parity strata (where the term
	// vanishes into the floor).
	ciTransientUops = 2000.0
)

// SamplingTable renders the per-metric 95% confidence intervals carried by
// phase-sampled results: one row per (benchmark, configuration) pair that
// was simulated with sampling, next to its phase count and clustering
// dispersion. Even-mode and full-detail rows are skipped — they carry no
// phase structure to resample over.
func SamplingTable(r *Runner) Table {
	t := Table{ID: "sampling", Title: "Phase-sampling confidence intervals (95%)",
		Columns: []string{"Benchmark", "Config", "Phases", "Disp", "IPC", "IPC CI", "MPKI CI", "MemStall% CI"}}
	ci := func(si *SamplingInfo, metric string) string {
		c := si.CI(metric)
		if c == nil {
			return "-"
		}
		return fmt.Sprintf("[%.3f, %.3f]", c.Lo, c.Hi)
	}
	for _, name := range r.mhNames() {
		for _, rc := range []RunConfig{Baseline, BufferCC, Hybrid} {
			res := r.Result(name, rc)
			si := res.Sampling
			if si == nil || len(si.CIs) == 0 {
				continue
			}
			t.AddRow(name, rc.Label(), fmt.Sprint(si.Phases), fmt.Sprintf("%.4f", si.Dispersion),
				fmt.Sprintf("%.3f", res.IPC), ci(si, "IPC"), ci(si, "MPKI"), ci(si, "MemStallPct"))
		}
	}
	if len(t.Rows) == 0 {
		t.Notes = append(t.Notes, "no phase-sampled runs (use -sample -sample-mode=phase)")
	}
	return t
}

// profilePhases is phase mode's planning pass: one functional interpretation
// of warmup + measured region collecting a basic-block vector per grid
// window, then deterministic clustering into phases. Reported to the Monitor
// as a "bbv-profile" phase on the planner pseudo-interval (-1), ahead of the
// fast-forward that streams the actual checkpoints.
func (r *Runner) profilePhases(bench, label string, p *prog.Program, full, measure uint64, so SampleOptions) (pl *phases.Plan, err error) {
	defer func() {
		if rec := recover(); rec != nil {
			pl, err = nil, fmt.Errorf("bbv profile: %v", rec)
		}
	}()
	//simlint:allow determinism -- wall-clock timing is the measurement here, not simulated state
	t0 := time.Now()
	defer func() {
		atomic.AddInt64(&r.profileWallNanos, int64(time.Since(t0)))
	}()
	w := so.bbvWindows()
	if uint64(w) > measure {
		w = int(measure)
	}
	if w < 1 {
		w = 1
	}
	step := measure / uint64(w)
	m := r.opts.Monitor
	if m != nil {
		m.Phase(bench, label, -1, "bbv-profile", full+measure)
		defer m.Done(bench, label, -1)
	}
	in := prog.NewInterp(p)
	in.Run(full)
	windows := make([]phases.Window, w)
	vecs := make([]phases.Vector, w)
	counts := make([]uint64, p.NumBlocks())
	for i := 0; i < w; i++ {
		n := step
		if i == w-1 {
			n = measure - step*uint64(w-1)
		}
		windows[i] = phases.Window{Start: full + uint64(i)*step, Len: n}
		for j := range counts {
			counts[j] = 0
		}
		in.RunBBV(n, counts)
		vecs[i] = phases.Normalize(counts)
		if m != nil {
			m.Progress(bench, label, -1, in.Count())
		}
	}
	// Capping the phase search at the even-mode interval count keeps phase
	// mode's detailed cost at or below even mode's for the same settings.
	maxK := so.intervals()
	if maxK > w {
		maxK = w
	}
	return phases.Build(windows, vecs, maxK, so.Phases), nil
}

// sampleCIs builds 95% confidence intervals for the phase-weighted
// ratio-of-sums estimators (IPC, MPKI, MemStallPct). The variance term is a
// delete-one-phase jackknife; on top of it every half-width carries a
// relative floor plus a term proportional to the clustering dispersion, so a
// poor clustering (heterogeneous phases) honestly widens the interval even
// when the few phase samples happen to agree.
func sampleCIs(plan []checkpoint, results []intervalResult, pp *phases.Plan) []SampleCI {
	type ratio struct {
		name string
		num  func(*intervalResult) float64
		den  func(*intervalResult) float64
	}
	metrics := []ratio{
		{"IPC",
			func(ir *intervalResult) float64 { return float64(ir.st.Committed) },
			func(ir *intervalResult) float64 { return float64(ir.st.Cycles) }},
		{"MPKI",
			func(ir *intervalResult) float64 { return 1000 * float64(ir.llcMiss) },
			func(ir *intervalResult) float64 { return float64(ir.st.Committed) }},
		{"MemStallPct",
			func(ir *intervalResult) float64 { return 100 * float64(ir.st.MemStallCycles) },
			func(ir *intervalResult) float64 { return float64(ir.st.Cycles) }},
	}
	k := len(plan)
	disp := pp.AvgDispersion()
	minMeasure := plan[0].measure
	for _, ck := range plan {
		if ck.measure < minMeasure {
			minMeasure = ck.measure
		}
	}
	relFloor := ciFloorRel + disp/2
	if minMeasure > 0 {
		relFloor += ciTransientUops / float64(minMeasure)
	}
	cis := make([]SampleCI, 0, len(metrics))
	for _, mt := range metrics {
		nums := make([]float64, k)
		dens := make([]float64, k)
		var sn, sd float64
		for i := range plan {
			w := float64(plan[i].wnum) / float64(plan[i].wden)
			nums[i] = w * mt.num(&results[i])
			dens[i] = w * mt.den(&results[i])
			sn += nums[i]
			sd += dens[i]
		}
		mean := stats.Div(sn, sd)
		var varJack float64
		if k > 1 {
			loo := make([]float64, k)
			var avg float64
			for i := 0; i < k; i++ {
				loo[i] = stats.Div(sn-nums[i], sd-dens[i])
				avg += loo[i]
			}
			avg /= float64(k)
			for i := 0; i < k; i++ {
				d := loo[i] - avg
				varJack += d * d
			}
			varJack *= float64(k-1) / float64(k)
		}
		half := ciZ*math.Sqrt(varJack) + mean*relFloor
		lo := mean - half
		if lo < 0 {
			lo = 0
		}
		cis = append(cis, SampleCI{Metric: mt.name, Mean: mean, Lo: lo, Hi: mean + half})
	}
	return cis
}
