package harness

import (
	"encoding/json"
	"strings"
	"sync"
	"testing"

	"runaheadsim/internal/metrics"
)

func testMixOptions() Options {
	return Options{MeasureUops: 8_000, WarmupUops: 4_000}
}

// TestRunMixDeterministic: two independent runners over the same mix must
// agree on every metric — the cluster is deterministic and the fairness math
// is pure.
func TestRunMixDeterministic(t *testing.T) {
	mix := []string{"libquantum", "mcf"}
	a := NewRunner(testMixOptions()).RunMix(mix, Buffer)
	b := NewRunner(testMixOptions()).RunMix(mix, Buffer)
	if a.WeightedSpeedup != b.WeightedSpeedup || a.HmeanSlowdown != b.HmeanSlowdown || a.MaxSlowdown != b.MaxSlowdown {
		t.Fatalf("mix metrics diverge across identical runs: %+v vs %+v", a, b)
	}
	for i := range a.Cores {
		if a.Cores[i] != b.Cores[i] {
			t.Fatalf("core %d diverges: %+v vs %+v", i, a.Cores[i], b.Cores[i])
		}
	}
}

// TestRunMixMemoized: the same runner must simulate each (mix, config) pair
// once and return the identical result thereafter.
func TestRunMixMemoized(t *testing.T) {
	r := NewRunner(testMixOptions())
	mix := []string{"milc", "omnetpp"}
	a := r.RunMix(mix, Baseline)
	if b := r.RunMix(mix, Baseline); a != b {
		t.Fatal("second RunMix did not return the memoized result")
	}
}

// TestRunMixMetricsSane bounds the fairness arithmetic: weighted speedup in
// (0, N], slowdowns positive, every core finished, per-core rows present.
func TestRunMixMetricsSane(t *testing.T) {
	mix := DefaultMix(2)
	res := NewRunner(testMixOptions()).RunMix(mix, Buffer)
	n := float64(len(mix))
	if res.WeightedSpeedup <= 0 || res.WeightedSpeedup > n*1.5 {
		t.Fatalf("weighted speedup %.2f out of range (0, %.1f]", res.WeightedSpeedup, n*1.5)
	}
	if res.HmeanSlowdown <= 0 || res.MaxSlowdown <= 0 || res.HmeanSlowdown > res.MaxSlowdown+1e-9 {
		t.Fatalf("slowdown summary inconsistent: hmean=%.2f max=%.2f", res.HmeanSlowdown, res.MaxSlowdown)
	}
	if len(res.Cores) != len(mix) {
		t.Fatalf("%d core rows for a %d-core mix", len(res.Cores), len(mix))
	}
	for _, c := range res.Cores {
		if c.FinishCycles <= 0 || c.IPCShared <= 0 || c.IPCAlone <= 0 {
			t.Fatalf("core %d has degenerate metrics: %+v", c.Core, c)
		}
	}
}

// TestMixResultJSONKeyedByCore pins the report contract: per-core stats
// serialize under a "cores" object keyed by core ID, not as a bare array.
func TestMixResultJSONKeyedByCore(t *testing.T) {
	res := NewRunner(testMixOptions()).RunMix([]string{"libquantum", "mcf"}, Baseline)
	data, err := json.Marshal(res)
	if err != nil {
		t.Fatal(err)
	}
	var decoded struct {
		Mix   []string           `json:"mix"`
		Cores map[string]MixCore `json:"cores"`
	}
	if err := json.Unmarshal(data, &decoded); err != nil {
		t.Fatalf("mix JSON is not an object with a cores map: %v\n%s", err, data)
	}
	for _, id := range []string{"0", "1"} {
		if _, ok := decoded.Cores[id]; !ok {
			t.Fatalf("cores map missing key %q: %s", id, data)
		}
	}
	if decoded.Cores["1"].Bench != "mcf" {
		t.Fatalf("core 1 should run mcf: %s", data)
	}
}

// recordingMonitor collects per-core progress units (the Monitor interval
// slot carries the core index for mixes). The alone-IPC reference runs
// report through the same Monitor with interval -1, so assertions filter on
// the mix's "/mc" config label.
type recordingMonitor struct {
	mu        sync.Mutex
	phases    map[string][]int // "bench|config" -> intervals seen
	starts    []string
	progressN int
}

func (m *recordingMonitor) RunStart(bench, config string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.starts = append(m.starts, bench+"|"+config)
}
func (m *recordingMonitor) RunDone(bench, config string) {}
func (m *recordingMonitor) Phase(bench, config string, interval int, phase string, total uint64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.phases == nil {
		m.phases = make(map[string][]int)
	}
	k := bench + "|" + config
	m.phases[k] = append(m.phases[k], interval)
}
func (m *recordingMonitor) Progress(bench, config string, interval int, done uint64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.progressN++
}
func (m *recordingMonitor) Done(bench, config string, interval int) {}

// TestMixMonitorPerCoreLabels: a mix run must report one unit per core to
// the Monitor — bench = the member kernel, interval = the core index — so
// telemetry /progress shows per-core rows.
func TestMixMonitorPerCoreLabels(t *testing.T) {
	mon := &recordingMonitor{}
	opts := testMixOptions()
	opts.Monitor = mon
	mix := []string{"libquantum", "mcf"}
	NewRunner(opts).RunMix(mix, Buffer)

	mon.mu.Lock()
	defer mon.mu.Unlock()
	var mixStart bool
	for _, s := range mon.starts {
		if strings.Contains(s, "libquantum+mcf") {
			mixStart = true
		}
	}
	if !mixStart {
		t.Fatalf("mix run never RunStarted under the joined mix name: %v", mon.starts)
	}
	for i, b := range mix {
		ivs := mon.phases[b+"|RB/mc2"]
		if len(ivs) == 0 {
			t.Fatalf("no Phase reports for mix member %s under the mix label (saw %v)", b, mon.phases)
		}
		for _, iv := range ivs {
			if iv != i {
				t.Fatalf("%s reported interval %d, want core index %d", b, iv, i)
			}
		}
	}
	if mon.progressN == 0 {
		t.Fatal("mix run never reported per-core progress")
	}
}

// TestMixPublishesMetrics: a completed mix must land its per-core and
// mix-level gauges in the default registry under names the telemetry
// exporter serves (the registry has no labels, so the core ID is part of
// the instrument name).
func TestMixPublishesMetrics(t *testing.T) {
	if !metrics.Enabled {
		t.Skip("metrics compiled out")
	}
	res := NewRunner(testMixOptions()).RunMix([]string{"libquantum", "mcf"}, Buffer)
	want := map[string]int64{
		"multicore_weighted_speedup_x1000": int64(res.WeightedSpeedup * 1000),
		"multicore_max_slowdown_x1000":     int64(res.MaxSlowdown * 1000),
		"multicore_core0_finish_cycles":    res.Cores[0].FinishCycles,
		"multicore_core1_finish_cycles":    res.Cores[1].FinishCycles,
	}
	for name, v := range want {
		if got := metrics.Default.Gauge(name, "").Value(); got != v {
			t.Errorf("%s = %d, want %d", name, got, v)
		}
	}
}
