package harness

import (
	"encoding/json"
	"fmt"
	"strings"
	"testing"

	"runaheadsim/internal/core"
)

func coreDefault() core.Config { return core.DefaultConfig() }

// quick returns a runner with a tiny budget for unit tests.
func quick() *Runner {
	return NewRunner(Options{MeasureUops: 8_000, WarmupUops: 8_000})
}

func TestRunnerMemoizes(t *testing.T) {
	r := quick()
	a := r.Result("mcf", Baseline)
	b := r.Result("mcf", Baseline)
	if a != b {
		t.Fatal("identical runs must be memoized")
	}
	c := r.Result("mcf", Runahead)
	if c == a {
		t.Fatal("different configs must not share results")
	}
}

func TestLabels(t *testing.T) {
	cases := map[string]RunConfig{
		"Base":      Baseline,
		"PF":        Baseline.WithPF(),
		"RA":        Runahead,
		"RA-Enh":    RunaheadEnh,
		"RB":        Buffer,
		"RB+CC":     BufferCC,
		"Hybrid":    Hybrid,
		"RA+PF":     Runahead.WithPF(),
		"Hybrid+PF": Hybrid.WithPF(),
	}
	for want, rc := range cases {
		if got := rc.Label(); got != want {
			t.Errorf("Label(%+v) = %q, want %q", rc, got, want)
		}
	}
}

func TestUnknownBenchmarkPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("unknown benchmark must panic")
		}
	}()
	quick().Result("nope", Baseline)
}

func TestTableRender(t *testing.T) {
	tb := Table{ID: "x", Title: "demo", Columns: []string{"A", "Blong"}}
	tb.AddRow("aaaa", "1")
	tb.AddRow("b", "22")
	tb.Notes = append(tb.Notes, "a note")
	var sb strings.Builder
	tb.Render(&sb)
	out := sb.String()
	for _, want := range []string{"== x: demo ==", "A     Blong", "aaaa", "note: a note"} {
		if !strings.Contains(out, want) {
			t.Fatalf("rendered table missing %q:\n%s", want, out)
		}
	}
}

func TestExperimentsListComplete(t *testing.T) {
	ids := map[string]bool{}
	for _, e := range Experiments() {
		ids[e.ID] = true
	}
	for _, want := range []string{"table1", "table2", "figure1", "figure2", "figure3", "figure4",
		"figure5", "figure9", "figure10", "figure11", "figure12", "figure13", "figure14",
		"figure15", "figure16", "figure17", "figure18", "sens-buffer", "sens-chaincache",
		"cpi-stack"} {
		if !ids[want] {
			t.Errorf("experiment %s missing", want)
		}
	}
	if len(ids) != 22 {
		t.Fatalf("expected 22 experiments, have %d", len(ids))
	}
}

func TestTable1StaticContent(t *testing.T) {
	tb := Table1(quick())
	if len(tb.Rows) < 8 {
		t.Fatalf("Table 1 has %d rows", len(tb.Rows))
	}
	var sb strings.Builder
	tb.Render(&sb)
	for _, want := range []string{"192-entry ROB", "92-entry reservation station", "DDR3", "Stream"} {
		if !strings.Contains(sb.String(), want) {
			t.Fatalf("Table 1 missing %q", want)
		}
	}
}

// TestFigureBuildersRunSmall smoke-tests one cheap figure end to end on a
// reduced benchmark set by monkey-free means: we just run the cheapest
// figures with a tiny budget.
func TestFigureBuildersRunSmall(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	r := quick()
	f9 := Figure9(r)
	if len(f9.Rows) != 30 { // 29 benchmarks + GMean
		t.Fatalf("figure 9 rows = %d, want 30", len(f9.Rows))
	}
	f11 := Figure11(r)
	if len(f11.Rows) != 14 { // 13 M+H + mean
		t.Fatalf("figure 11 rows = %d, want 14", len(f11.Rows))
	}
}

// TestFigure9ShapeRegression locks in the qualitative Figure 9 results on a
// representative subset so calibration changes that break the paper's story
// fail loudly:
//
//   - the runahead buffer beats traditional runahead where chains are short
//     and repetitive (mcf, zeusmp);
//   - the buffer loses outright on sphinx3 (chains past the 32-uop cap);
//   - the hybrid policy rescues sphinx3 by falling back to traditional mode;
//   - every mode leaves the low-intensity benchmarks alone.
func TestFigure9ShapeRegression(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	// Automatic warmup: low-intensity benchmarks need their arrays wrapped
	// before steady state, or cold misses make runahead look useful on them.
	r := NewRunner(Options{MeasureUops: 40_000})
	delta := func(bench string, rc RunConfig) float64 {
		return r.ipcDeltaPct(bench, rc)
	}
	for _, bench := range []string{"mcf", "zeusmp"} {
		ra, rb := delta(bench, Runahead), delta(bench, BufferCC)
		if rb <= ra {
			t.Errorf("%s: buffer %+.1f%% should beat traditional %+.1f%%", bench, rb, ra)
		}
		if rb <= 10 {
			t.Errorf("%s: buffer gain %+.1f%% implausibly small", bench, rb)
		}
	}
	if rb := delta("sphinx3", BufferCC); rb >= 0 {
		t.Errorf("sphinx3: buffer should lose (chains exceed the cap), got %+.1f%%", rb)
	}
	if hy := delta("sphinx3", Hybrid); hy <= delta("sphinx3", BufferCC) {
		t.Errorf("sphinx3: hybrid (%+.1f%%) must rescue the buffer (%+.1f%%)",
			hy, delta("sphinx3", BufferCC))
	}
	if hyStats := r.Result("sphinx3", Hybrid).Stats; hyStats.HybridChoseTrad == 0 {
		t.Error("sphinx3: hybrid never chose traditional runahead")
	}
	if low := delta("calculix", Hybrid); low > 1 || low < -1 {
		t.Errorf("calculix (low intensity) moved %+.1f%% under hybrid", low)
	}
}

// TestSensitivityTables smoke-checks the sensitivity experiments.
func TestSensitivityTables(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	r := NewRunner(Options{MeasureUops: 15_000, WarmupUops: 15_000, Benchmarks: []string{"mcf", "zeusmp"}})
	sb := SensBufferSize(r)
	if len(sb.Rows) != 3 { // two benchmarks + GMean
		t.Fatalf("sens-buffer rows = %d", len(sb.Rows))
	}
	sc := SensChainCache(r)
	if len(sc.Rows) != 3 {
		t.Fatalf("sens-chaincache rows = %d", len(sc.Rows))
	}
	ep := ExtPrefetchers(r)
	if len(ep.Columns) != 4 {
		t.Fatalf("ext-prefetchers columns = %d", len(ep.Columns))
	}
}

func TestClaimsWellFormed(t *testing.T) {
	ids := map[string]bool{}
	for _, c := range Claims() {
		if c.ID == "" || c.Description == "" || c.Measure == nil {
			t.Errorf("malformed claim %+v", c)
		}
		if ids[c.ID] {
			t.Errorf("duplicate claim id %s", c.ID)
		}
		ids[c.ID] = true
	}
	if len(ids) < 15 {
		t.Fatalf("only %d claims", len(ids))
	}
}

func TestStorageOverheadNearPaper(t *testing.T) {
	kb := float64(StorageOverheadBytes(coreDefault())) / 1024
	if kb < 1 || kb > 3 {
		t.Fatalf("storage overhead %.2f kB; paper estimates 1.7 kB", kb)
	}
}

func TestDefaultShape(t *testing.T) {
	if ok, _ := defaultShape(10, 20); !ok {
		t.Error("2x magnitude should pass")
	}
	if ok, _ := defaultShape(10, -5); ok {
		t.Error("sign flip must fail")
	}
	if ok, _ := defaultShape(10, 100); ok {
		t.Error("10x magnitude must fail")
	}
	if ok, _ := defaultShape(0, 1); !ok {
		t.Error("near-zero must pass for zero paper value")
	}
}

func TestReportRunsSmall(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	r := NewRunner(Options{MeasureUops: 8_000, WarmupUops: 8_000, Benchmarks: []string{"mcf", "zeusmp"}})
	tb := Report(r)
	if len(tb.Rows) != len(Claims()) {
		t.Fatalf("report rows = %d, want %d", len(tb.Rows), len(Claims()))
	}
}

// TestCPIStackTable checks every row of the CPI-stack experiment sums to
// (approximately) 100% — the rendering-level view of the accounting
// invariant.
func TestCPIStackTable(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	r := NewRunner(Options{MeasureUops: 8_000, WarmupUops: 8_000, Benchmarks: []string{"mcf", "zeusmp"}})
	tb := CPIStack(r)
	if len(tb.Rows) != 8 { // 2 benchmarks x 4 configs
		t.Fatalf("cpi-stack rows = %d, want 8", len(tb.Rows))
	}
	for _, row := range tb.Rows {
		var sum float64
		for _, cell := range row[2:] {
			var v float64
			if _, err := fmt.Sscanf(cell, "%f%%", &v); err != nil {
				t.Fatalf("unparseable cell %q in row %v", cell, row)
			}
			sum += v
		}
		if sum < 99.0 || sum > 101.0 {
			t.Fatalf("row %v sums to %.1f%%, want ~100%%", row, sum)
		}
	}
}

// TestRunnerTimelineOption checks the TimelineInterval option produces a
// populated timeline on every result.
func TestRunnerTimelineOption(t *testing.T) {
	r := NewRunner(Options{MeasureUops: 8_000, WarmupUops: 8_000, TimelineInterval: 512, TimelineSamples: 64})
	res := r.Result("mcf", Baseline)
	if res.Timeline == nil || res.Timeline.Len() == 0 {
		t.Fatal("timeline option produced no samples")
	}
	for _, s := range res.Timeline.Samples() {
		if s.IPC < 0 || s.Mode == "" {
			t.Fatalf("malformed sample %+v", s)
		}
	}
	// Without the option the field stays nil.
	r2 := quick()
	if r2.Result("mcf", Baseline).Timeline != nil {
		t.Fatal("timeline must be nil when the option is off")
	}
}

func TestTableWriteJSON(t *testing.T) {
	tb := Table{ID: "x", Title: "demo", Columns: []string{"A", "B"}, Notes: []string{"n"}}
	tb.AddRow("1", "2")
	var sb strings.Builder
	if err := tb.WriteJSON(&sb); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		ID      string     `json:"id"`
		Columns []string   `json:"columns"`
		Rows    [][]string `json:"rows"`
	}
	if err := json.Unmarshal([]byte(sb.String()), &doc); err != nil {
		t.Fatal(err)
	}
	if doc.ID != "x" || len(doc.Rows) != 1 || doc.Rows[0][1] != "2" {
		t.Fatalf("JSON export lost data: %+v", doc)
	}
}

func TestTableJSONRoundTrip(t *testing.T) {
	tb := Table{ID: "x", Title: "demo", Columns: []string{"A", "B"}, Notes: []string{"n"}}
	tb.AddRow("1", "2")
	data, err := json.Marshal(tb)
	if err != nil {
		t.Fatal(err)
	}
	var back Table
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.ID != tb.ID || len(back.Rows) != 1 || back.Rows[0][1] != "2" || back.Notes[0] != "n" {
		t.Fatalf("round trip lost data: %+v", back)
	}
}
