package harness

import (
	"bytes"
	"fmt"
	"math"
	"runtime"
	"time"

	"runaheadsim/internal/core"
	"runaheadsim/internal/snapshot"
	"runaheadsim/internal/workload"
)

// This file benchmarks the cycle kernel itself: the event-driven
// wakeup/select scheduler (core.SchedEvent) against the reference ROB scan
// (core.SchedScan), on the memory-bound workloads whose large in-flight
// windows the scan is worst at. Every timed pair doubles as an equivalence
// check — both runs must finish on the same cycle and serialize to
// byte-identical machine snapshots — so the speedup number can never come
// from a behavioral shortcut. cmd/runahead-sweep's -bench-core flag writes
// the result to BENCH_core.json; `make bench-core` is the canonical
// invocation.

// BenchCoreModes are the three systems the kernel benchmark exercises:
// the baseline and the paper's two runahead-buffer flavors.
func BenchCoreModes() []core.Mode {
	return []core.Mode{core.ModeNone, core.ModeBuffer, core.ModeBufferCC}
}

// DefaultBenchCoreBenches is the memory-bound subset the kernel benchmark
// defaults to: high-intensity workloads with distinct access shapes (pointer
// chase, irregular gather, tree walk, stream).
func DefaultBenchCoreBenches() []string {
	return []string{"mcf", "milc", "omnetpp", "libquantum"}
}

// BenchCoreRun is one (benchmark, mode) timing pair.
type BenchCoreRun struct {
	Bench string `json:"bench"`
	Mode  string `json:"mode"`

	SimCycles int64  `json:"sim_cycles"`
	Committed uint64 `json:"committed_uops"`

	ScanSec  float64 `json:"scan_wall_sec"`
	EventSec float64 `json:"event_wall_sec"`

	ScanCyclesPerSec  float64 `json:"scan_sim_cycles_per_sec"`
	EventCyclesPerSec float64 `json:"event_sim_cycles_per_sec"`
	Speedup           float64 `json:"speedup"`

	// SnapshotDigest is the FNV digest of the drained machine snapshot —
	// verified identical between the two scheduler runs before reporting.
	SnapshotDigest string `json:"snapshot_digest"`
}

// BenchCoreReport is the BENCH_core.json schema.
type BenchCoreReport struct {
	MeasureUops    uint64         `json:"measure_uops"`
	Runs           []BenchCoreRun `json:"runs"`
	GeomeanSpeedup float64        `json:"geomean_speedup"`
}

// BenchCore times every (benchmark, mode) pair under both schedulers and
// verifies their equivalence. Benches nil selects the memory-bound default
// set; uops 0 selects 300k measured uops per run.
func BenchCore(benches []string, uops uint64) (*BenchCoreReport, error) {
	if len(benches) == 0 {
		benches = DefaultBenchCoreBenches()
	}
	if uops == 0 {
		uops = 300_000
	}
	rep := &BenchCoreReport{MeasureUops: uops}
	logSpeedupSum := 0.0
	for _, bench := range benches {
		p, err := workload.Load(bench)
		if err != nil {
			return nil, err
		}
		for _, mode := range BenchCoreModes() {
			timed := func(kind core.SchedulerKind) (sec float64, c *core.Core, snap []byte, err error) {
				cfg := core.DefaultConfig()
				cfg.Mode = mode
				cfg.Scheduler = kind
				c = core.New(cfg, p)
				runtime.GC() // keep allocator state comparable across the pair
				//simlint:allow determinism -- wall-clock timing is the measurement here, not simulated state
				t0 := time.Now()
				c.Run(uops)
				sec = time.Since(t0).Seconds()
				if err = c.Drain(); err != nil {
					return 0, nil, nil, fmt.Errorf("%s/%v/%v: %w", bench, mode, kind, err)
				}
				snap, err = c.Snapshot()
				if err != nil {
					return 0, nil, nil, fmt.Errorf("%s/%v/%v: %w", bench, mode, kind, err)
				}
				return sec, c, snap, nil
			}
			scanSec, scanCore, scanSnap, err := timed(core.SchedScan)
			if err != nil {
				return nil, err
			}
			eventSec, eventCore, eventSnap, err := timed(core.SchedEvent)
			if err != nil {
				return nil, err
			}
			if eventCore.Now() != scanCore.Now() {
				return nil, fmt.Errorf("%s/%v: schedulers diverged — event finished at cycle %d, scan at %d",
					bench, mode, eventCore.Now(), scanCore.Now())
			}
			if !bytes.Equal(eventSnap, scanSnap) {
				return nil, fmt.Errorf("%s/%v: schedulers diverged — machine snapshots differ (%d vs %d bytes)",
					bench, mode, len(eventSnap), len(scanSnap))
			}
			cycles := eventCore.Stats().Cycles
			run := BenchCoreRun{
				Bench:             bench,
				Mode:              mode.String(),
				SimCycles:         cycles,
				Committed:         eventCore.Stats().Committed,
				ScanSec:           scanSec,
				EventSec:          eventSec,
				ScanCyclesPerSec:  float64(cycles) / scanSec,
				EventCyclesPerSec: float64(cycles) / eventSec,
				Speedup:           scanSec / eventSec,
				SnapshotDigest:    fmt.Sprintf("%016x", snapshot.HashBytes(eventSnap)),
			}
			logSpeedupSum += math.Log(run.Speedup)
			rep.Runs = append(rep.Runs, run)
		}
	}
	rep.GeomeanSpeedup = math.Exp(logSpeedupSum / float64(len(rep.Runs)))
	return rep, nil
}
