package harness

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"
)

// Table is one regenerated paper artifact rendered as text.
type Table struct {
	ID      string // "figure1", "table2", ...
	Title   string
	Columns []string
	Rows    [][]string
	Notes   []string
}

// AddRow appends a row of already-formatted cells.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// Render writes the table, column-aligned, with title and notes.
func (t *Table) Render(w io.Writer) {
	fmt.Fprintf(w, "== %s: %s ==\n", t.ID, t.Title)
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) {
		var b strings.Builder
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		fmt.Fprintln(w, strings.TrimRight(b.String(), " "))
	}
	line(t.Columns)
	total := len(t.Columns) - 1
	for _, wd := range widths {
		total += wd + 1
	}
	fmt.Fprintln(w, strings.Repeat("-", total))
	for _, row := range t.Rows {
		line(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(w, "note: %s\n", n)
	}
	fmt.Fprintln(w)
}

// WriteJSON renders the table as one machine-readable JSON object with the
// same cells the text renderer prints.
func (t *Table) WriteJSON(w io.Writer) error {
	return json.NewEncoder(w).Encode(struct {
		ID      string     `json:"id"`
		Title   string     `json:"title"`
		Columns []string   `json:"columns"`
		Rows    [][]string `json:"rows"`
		Notes   []string   `json:"notes,omitempty"`
	}{t.ID, t.Title, t.Columns, t.Rows, t.Notes})
}

// f1 formats a float with one decimal.
func f1(v float64) string { return fmt.Sprintf("%.1f", v) }

// f2 formats a float with two decimals.
func f2(v float64) string { return fmt.Sprintf("%.2f", v) }

// pct formats a percentage with one decimal.
func pct(v float64) string { return fmt.Sprintf("%.1f%%", v) }
