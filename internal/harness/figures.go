package harness

import (
	"fmt"

	"runaheadsim/internal/core"
	"runaheadsim/internal/stats"
	"runaheadsim/internal/workload"
)

// allNames returns the 29 benchmarks in Figure 1 order, filtered by the
// runner's subset option.
func (r *Runner) allNames() []string {
	return r.filter(workload.Names())
}

// mhNames returns the 13 medium+high intensity benchmarks, filtered by the
// runner's subset option.
func (r *Runner) mhNames() []string {
	var out []string
	for _, s := range workload.MediumHigh() {
		out = append(out, s.Name)
	}
	return r.filter(out)
}

func (r *Runner) filter(names []string) []string {
	if len(r.opts.Benchmarks) == 0 {
		return names
	}
	want := make(map[string]bool, len(r.opts.Benchmarks))
	for _, n := range r.opts.Benchmarks {
		want[n] = true
	}
	var out []string
	for _, n := range names {
		if want[n] {
			out = append(out, n)
		}
	}
	return out
}

// ipcDeltaPct is the figures' y-axis: percent IPC difference over the
// no-prefetching baseline.
func (r *Runner) ipcDeltaPct(bench string, rc RunConfig) float64 {
	base := r.Result(bench, Baseline)
	v := r.Result(bench, rc)
	return stats.PctDelta(v.IPC, base.IPC)
}

// gmeanDelta aggregates per-benchmark IPC ratios geometrically and reports
// the percent gain, the way the paper's GMean bars do.
func (r *Runner) gmeanDelta(benches []string, rc RunConfig) float64 {
	var ratios []float64
	for _, b := range benches {
		base := r.Result(b, Baseline)
		v := r.Result(b, rc)
		// Div, not /: a degenerate run (zero-cycle sampled window) must not
		// leak NaN/Inf through the geomean into tables and -json output.
		ratios = append(ratios, stats.Div(v.IPC, base.IPC))
	}
	return 100 * (stats.GeoMean(ratios) - 1)
}

// Table1 renders the simulated system configuration.
func Table1(r *Runner) Table {
	cfg := core.DefaultConfig()
	t := Table{ID: "table1", Title: "System configuration", Columns: []string{"Component", "Configuration"}}
	t.AddRow("Core", fmt.Sprintf("%d-wide issue, %d-entry ROB, %d-entry reservation station, hybrid branch predictor, 3.2 GHz",
		cfg.IssueWidth, cfg.ROBSize, cfg.RSSize))
	t.AddRow("Runahead buffer", fmt.Sprintf("%d-entry, 8-byte uops (256 bytes)", cfg.RunaheadBufferSize))
	t.AddRow("Runahead cache", fmt.Sprintf("%d bytes, %d-way, %dB lines", cfg.RACacheBytes, cfg.RACacheWays, cfg.RACacheLineBytes))
	t.AddRow("Chain cache", fmt.Sprintf("%d entries x %d uops (512 bytes)", cfg.ChainCacheEntries, cfg.MaxChainLength))
	t.AddRow("L1 caches", fmt.Sprintf("%dKB I + %dKB D, 64B lines, 2 ports, %d-cycle, 8-way, write-back",
		cfg.Mem.L1I.SizeBytes>>10, cfg.Mem.L1D.SizeBytes>>10, cfg.Mem.L1Latency))
	t.AddRow("Last level cache", fmt.Sprintf("%dMB, 8-way, 64B lines, %d-cycle, write-back, inclusive; %d-entry memory queue",
		cfg.Mem.LLC.SizeBytes>>20, cfg.Mem.LLCLatency, cfg.Mem.DRAM.QueueCap))
	t.AddRow("Prefetcher", "Stream: 32 streams, distance 32, degree 2, into LLC, FDP throttling")
	t.AddRow("DRAM", fmt.Sprintf("DDR3, %d channels x %d banks, %dKB rows, CAS 13.75ns, bank conflicts & queuing modeled, 800 MHz bus",
		cfg.Mem.DRAM.Channels, cfg.Mem.DRAM.BanksPerChannel, cfg.Mem.DRAM.RowBytes>>10))
	return t
}

// Table2 classifies the suite by measured MPKI (High >= 10, Medium > 2).
func Table2(r *Runner) Table {
	t := Table{ID: "table2", Title: "Workload classification by memory intensity",
		Columns: []string{"Benchmark", "MPKI", "Measured class", "Paper class"}}
	for _, name := range r.allNames() {
		res := r.Result(name, Baseline)
		class := "low"
		switch {
		case res.MPKI >= 10:
			class = "high"
		case res.MPKI > 2:
			class = "medium"
		}
		spec, _ := workload.SpecOf(name)
		t.AddRow(name, f1(res.MPKI), class, spec.Class.String())
	}
	return t
}

// Figure1 reports the percent of cycles stalled waiting for memory, plus
// IPC, for the whole suite on the no-prefetching baseline.
func Figure1(r *Runner) Table {
	t := Table{ID: "figure1", Title: "% of total cycles stalled on memory (baseline); IPC on top of each bar",
		Columns: []string{"Benchmark", "StallPct", "IPC"}}
	for _, name := range r.allNames() {
		res := r.Result(name, Baseline)
		t.AddRow(name, pct(res.MemStallPct), f2(res.IPC))
	}
	return t
}

// Figure2 reports the fraction of cache misses whose source data is
// available on chip (no DRAM-bound ancestor inside the window).
func Figure2(r *Runner) Table {
	t := Table{ID: "figure2", Title: "% of cache misses with source data available on-chip",
		Columns: []string{"Benchmark", "OnChipPct", "Misses"}}
	for _, name := range r.allNames() {
		res := r.Result(name, Baseline.WithDepTrack())
		st := res.Stats
		p := stats.Pct(st.MissSourcesOnChip, st.DemandDRAMMisses)
		if st.DemandDRAMMisses == 0 {
			t.AddRow(name, "-", "0")
			continue
		}
		t.AddRow(name, pct(p), fmt.Sprint(st.DemandDRAMMisses))
	}
	return t
}

// Figure3 reports the fraction of operations executed during traditional
// runahead that lie on some miss dependence chain.
func Figure3(r *Runner) Table {
	t := Table{ID: "figure3", Title: "% of runahead operations on a miss dependence chain (traditional runahead)",
		Columns: []string{"Benchmark", "ChainOpsPct", "RunaheadUops"}}
	for _, name := range r.allNames() {
		st := r.Result(name, Runahead.WithDepTrack()).Stats
		if st.RATotalUops == 0 {
			t.AddRow(name, "-", "0")
			continue
		}
		t.AddRow(name, pct(stats.Pct(st.RAChainUops, st.RATotalUops)), fmt.Sprint(st.RATotalUops))
	}
	return t
}

// Figure4 reports how often miss dependence chains repeat within a runahead
// interval.
func Figure4(r *Runner) Table {
	t := Table{ID: "figure4", Title: "Repeated vs unique miss dependence chains per runahead interval",
		Columns: []string{"Benchmark", "RepeatedPct", "UniquePct", "Chains"}}
	for _, name := range r.allNames() {
		st := r.Result(name, Runahead.WithDepTrack()).Stats
		total := st.RAChainsUnique + st.RAChainsRepeated
		if total == 0 {
			t.AddRow(name, "-", "-", "0")
			continue
		}
		t.AddRow(name,
			pct(stats.Pct(st.RAChainsRepeated, total)),
			pct(stats.Pct(st.RAChainsUnique, total)),
			fmt.Sprint(total))
	}
	return t
}

// Figure5 reports the mean dependence chain length (uops) of misses
// generated during traditional runahead.
func Figure5(r *Runner) Table {
	t := Table{ID: "figure5", Title: "Mean dependence chain length of runahead misses (uops)",
		Columns: []string{"Benchmark", "ChainLen", "Chains"}}
	for _, name := range r.allNames() {
		st := r.Result(name, Runahead.WithDepTrack()).Stats
		if st.ChainLengths.Count == 0 {
			t.AddRow(name, "-", "0")
			continue
		}
		t.AddRow(name, f1(st.ChainLengths.Mean()), fmt.Sprint(st.ChainLengths.Count))
	}
	return t
}

// Figure9 reports percent IPC difference over the no-PF baseline for the
// four runahead systems, over the full suite, with the medium+high GMean.
func Figure9(r *Runner) Table {
	configs := []RunConfig{Runahead, Buffer, BufferCC, Hybrid}
	t := Table{ID: "figure9", Title: "% IPC difference over no-prefetching baseline",
		Columns: []string{"Benchmark", "RA", "RB", "RB+CC", "Hybrid"}}
	for _, name := range r.allNames() {
		row := []string{name}
		for _, rc := range configs {
			row = append(row, pct(r.ipcDeltaPct(name, rc)))
		}
		t.AddRow(row...)
	}
	row := []string{"GMean(M+H)"}
	for _, rc := range configs {
		row = append(row, pct(r.gmeanDelta(r.mhNames(), rc)))
	}
	t.AddRow(row...)
	t.Notes = append(t.Notes, "paper GMean(M+H): RA +14.3%, RB +14.4%, RB+CC +17.2%, Hybrid +21.0%")
	return t
}

// Figure10 reports the LLC misses generated per runahead interval (the MLP
// the mechanism buys), with and without prefetching.
func Figure10(r *Runner) Table {
	configs := []RunConfig{Runahead, BufferCC, Runahead.WithPF(), BufferCC.WithPF()}
	t := Table{ID: "figure10", Title: "Cache misses generated per runahead interval",
		Columns: []string{"Benchmark", "RA", "RB", "RA+PF", "RB+PF"}}
	means := make([][]float64, len(configs))
	for _, name := range r.mhNames() {
		row := []string{name}
		for i, rc := range configs {
			st := r.Result(name, rc).Stats
			v := stats.Ratio(st.RunaheadMissesLLC, st.RunaheadIntervals)
			means[i] = append(means[i], v)
			row = append(row, f1(v))
		}
		t.AddRow(row...)
	}
	row := []string{"Mean"}
	for i := range configs {
		row = append(row, f1(stats.Mean(means[i])))
	}
	t.AddRow(row...)
	t.Notes = append(t.Notes, "paper: the buffer generates ~2x the misses of traditional runahead")
	return t
}

// Figure11 reports the percent of total cycles spent in runahead-buffer
// mode (front end clock-gated).
func Figure11(r *Runner) Table {
	t := Table{ID: "figure11", Title: "% of total cycles in runahead buffer mode (RB+CC)",
		Columns: []string{"Benchmark", "BufferCyclesPct"}}
	var vals []float64
	for _, name := range r.mhNames() {
		st := r.Result(name, BufferCC).Stats
		v := 100 * stats.Div(float64(st.RunaheadBufferCycles), float64(st.Cycles))
		vals = append(vals, v)
		t.AddRow(name, pct(v))
	}
	t.AddRow("Mean", pct(stats.Mean(vals)))
	t.Notes = append(t.Notes, "paper mean: 47%")
	return t
}

// Figure12 reports the chain cache hit rate.
func Figure12(r *Runner) Table {
	t := Table{ID: "figure12", Title: "Chain cache hit rate (RB+CC)",
		Columns: []string{"Benchmark", "HitRate"}}
	var vals []float64
	for _, name := range r.mhNames() {
		st := r.Result(name, BufferCC).Stats
		v := stats.Pct(st.ChainCacheHits, st.ChainCacheHits+st.ChainCacheMisses)
		vals = append(vals, v)
		t.AddRow(name, pct(v))
	}
	t.AddRow("Mean", pct(stats.Mean(vals)))
	return t
}

// Figure13 reports how often a chain cache hit exactly matches the chain
// that would be generated from the ROB.
func Figure13(r *Runner) Table {
	t := Table{ID: "figure13", Title: "% of chain cache hits exactly matching the ROB chain (RB+CC)",
		Columns: []string{"Benchmark", "ExactPct", "HitsChecked"}}
	var vals []float64
	for _, name := range r.mhNames() {
		st := r.Result(name, BufferCC).Stats
		if st.ChainCacheChecked == 0 {
			t.AddRow(name, "-", "0")
			continue
		}
		v := stats.Pct(st.ChainCacheExact, st.ChainCacheChecked)
		vals = append(vals, v)
		t.AddRow(name, pct(v), fmt.Sprint(st.ChainCacheChecked))
	}
	t.AddRow("Mean", pct(stats.Mean(vals)), "")
	t.Notes = append(t.Notes, "paper mean: 53% exact matches")
	return t
}

// Figure14 reports the fraction of runahead cycles the hybrid policy spends
// in buffer mode.
func Figure14(r *Runner) Table {
	t := Table{ID: "figure14", Title: "% of runahead cycles using the buffer under the hybrid policy",
		Columns: []string{"Benchmark", "BufferPct"}}
	var vals []float64
	for _, name := range r.mhNames() {
		st := r.Result(name, Hybrid).Stats
		if st.RunaheadCycles == 0 {
			t.AddRow(name, "-")
			continue
		}
		v := 100 * stats.Div(float64(st.RunaheadBufferCycles), float64(st.RunaheadCycles))
		vals = append(vals, v)
		t.AddRow(name, pct(v))
	}
	t.AddRow("Mean", pct(stats.Mean(vals)))
	t.Notes = append(t.Notes, "paper mean: 71% of runahead time in buffer mode")
	return t
}

// Figure15 reports IPC gains with the stream prefetcher, still normalized
// to the no-prefetching baseline.
func Figure15(r *Runner) Table {
	configs := []RunConfig{Baseline.WithPF(), Runahead.WithPF(), Buffer.WithPF(), BufferCC.WithPF(), Hybrid.WithPF()}
	t := Table{ID: "figure15", Title: "% IPC difference over no-PF baseline, with stream prefetching",
		Columns: []string{"Benchmark", "PF", "RA+PF", "RB+PF", "RB+CC+PF", "Hybrid+PF"}}
	for _, name := range r.mhNames() {
		row := []string{name}
		for _, rc := range configs {
			row = append(row, pct(r.ipcDeltaPct(name, rc)))
		}
		t.AddRow(row...)
	}
	row := []string{"GMean"}
	for _, rc := range configs {
		row = append(row, pct(r.gmeanDelta(r.mhNames(), rc)))
	}
	t.AddRow(row...)
	t.Notes = append(t.Notes, "paper GMean: PF +37.5%, RA+PF +48.3%, RB+PF +47.1%, RB+CC+PF +48.2%, Hybrid+PF +51.5%")
	return t
}

// Figure16 reports extra DRAM requests versus the no-PF baseline.
func Figure16(r *Runner) Table {
	configs := []RunConfig{Runahead, BufferCC, Hybrid, Baseline.WithPF()}
	t := Table{ID: "figure16", Title: "% additional DRAM requests vs no-prefetching baseline",
		Columns: []string{"Benchmark", "RA", "RB+CC", "Hybrid", "PF"}}
	sums := make([][]float64, len(configs))
	for _, name := range r.mhNames() {
		base := r.Result(name, Baseline)
		row := []string{name}
		for i, rc := range configs {
			v := r.Result(name, rc)
			d := stats.PctDelta(float64(v.DRAMRequests), float64(base.DRAMRequests))
			sums[i] = append(sums[i], d)
			row = append(row, pct(d))
		}
		t.AddRow(row...)
	}
	row := []string{"Mean"}
	for i := range configs {
		row = append(row, pct(stats.Mean(sums[i])))
	}
	t.AddRow(row...)
	t.Notes = append(t.Notes, "paper means: RA +4%, RB +12%, Hybrid +9%, PF +38%")
	return t
}

// Figure17 reports normalized energy without prefetching.
func Figure17(r *Runner) Table {
	configs := []RunConfig{Runahead, RunaheadEnh, Buffer, BufferCC, Hybrid}
	t := Table{ID: "figure17", Title: "% energy difference vs no-PF baseline (no prefetching)",
		Columns: []string{"Benchmark", "RA", "RA-Enh", "RB", "RB+CC", "Hybrid"}}
	r.energyRows(&t, configs)
	t.Notes = append(t.Notes, "paper GMean: RA +44%, RA-Enh +9%, RB -4.4%, RB+CC -6.7%, Hybrid -2.3%")
	return t
}

// Figure18 reports normalized energy with prefetching (still vs the no-PF
// baseline).
func Figure18(r *Runner) Table {
	configs := []RunConfig{Baseline.WithPF(), Runahead.WithPF(), RunaheadEnh.WithPF(), Buffer.WithPF(), BufferCC.WithPF(), Hybrid.WithPF()}
	t := Table{ID: "figure18", Title: "% energy difference vs no-PF baseline (with prefetching)",
		Columns: []string{"Benchmark", "PF", "RA+PF", "RA-Enh+PF", "RB+PF", "RB+CC+PF", "Hybrid+PF"}}
	r.energyRows(&t, configs)
	t.Notes = append(t.Notes, "paper GMean: PF -19.5%, RA+PF -1.7%, RA-Enh+PF -15.4%, RB+PF -20.8%, RB+CC+PF -22.5%, Hybrid+PF -19.9%")
	return t
}

func (r *Runner) energyRows(t *Table, configs []RunConfig) {
	sums := make([][]float64, len(configs))
	for _, name := range r.mhNames() {
		base := r.Result(name, Baseline)
		row := []string{name}
		for i, rc := range configs {
			v := r.Result(name, rc)
			d := stats.PctDelta(v.Energy.Total(), base.Energy.Total())
			sums[i] = append(sums[i], d)
			row = append(row, pct(d))
		}
		t.AddRow(row...)
	}
	row := []string{"Mean"}
	for i := range configs {
		row = append(row, pct(stats.Mean(sums[i])))
	}
	t.AddRow(row...)
}

// Experiment names one regenerable artifact.
type Experiment struct {
	ID    string
	Build func(*Runner) Table
}

// Experiments lists every table and figure in paper order.
func Experiments() []Experiment {
	return []Experiment{
		{"table1", Table1},
		{"table2", Table2},
		{"figure1", Figure1},
		{"figure2", Figure2},
		{"figure3", Figure3},
		{"figure4", Figure4},
		{"figure5", Figure5},
		{"figure9", Figure9},
		{"figure10", Figure10},
		{"figure11", Figure11},
		{"figure12", Figure12},
		{"figure13", Figure13},
		{"figure14", Figure14},
		{"figure15", Figure15},
		{"figure16", Figure16},
		{"figure17", Figure17},
		{"figure18", Figure18},
		{"sens-buffer", SensBufferSize},
		{"sens-chaincache", SensChainCache},
		{"ext-prefetchers", ExtPrefetchers},
		{"ext-adaptive", ExtAdaptive},
		{"cpi-stack", CPIStack},
	}
}
