package harness

import (
	"fmt"

	"runaheadsim/internal/core"
)

// CPIStack renders the per-cycle accounting breakdown for every benchmark
// under the headline configurations: what fraction of each run's cycles went
// to useful commits, front-end starvation, branch recovery, memory stalls,
// and runahead overhead. The buckets are exhaustive and exclusive, so each
// row sums to 100% — the observability counterpart to Figure 1's stall bars.
func CPIStack(r *Runner) Table {
	configs := []RunConfig{Baseline, Runahead, BufferCC, Hybrid}
	cols := []string{"Benchmark", "Config"}
	for _, b := range core.CPIBuckets() {
		cols = append(cols, b.String())
	}
	t := Table{ID: "cpi-stack", Title: "CPI stack: % of cycles per accounting bucket",
		Columns: cols}
	for _, name := range r.mhNames() {
		for _, rc := range configs {
			st := r.Result(name, rc).Stats
			row := []string{name, rc.Label()}
			for _, b := range core.CPIBuckets() {
				row = append(row, pct(100*st.CPIFraction(b)))
			}
			t.AddRow(row...)
		}
	}
	t.Notes = append(t.Notes,
		"buckets are exclusive and exhaustive: each row sums to 100% of the run's cycles",
		fmt.Sprintf("sampled under the headline configs: %s, %s, %s, %s",
			configs[0].Label(), configs[1].Label(), configs[2].Label(), configs[3].Label()))
	return t
}
