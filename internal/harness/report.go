package harness

import (
	"fmt"
	"math"

	"runaheadsim/internal/core"
	"runaheadsim/internal/stats"
)

// Claim is one quantitative statement the paper makes, paired with the code
// that measures the same quantity here. The report checks *shape*: the sign
// must match and the magnitude must be within a generous band (the substrate
// is a different simulator on synthetic kernels), unless the claim defines a
// stricter Check.
type Claim struct {
	ID          string
	Description string
	Paper       float64
	Unit        string
	Measure     func(r *Runner) float64
	// Check overrides the default shape test; it returns ok and a note.
	Check func(measured float64) (bool, string)
}

// defaultShape: same sign, magnitude within [1/4x, 4x] of the paper's.
func defaultShape(paper, measured float64) (bool, string) {
	if paper == 0 {
		return math.Abs(measured) < 5, "near zero"
	}
	if (paper > 0) != (measured > 0) {
		return false, "sign differs"
	}
	ratio := measured / paper
	if ratio < 0.25 || ratio > 4 {
		return false, fmt.Sprintf("magnitude off by %.1fx", ratio)
	}
	return true, fmt.Sprintf("%.1fx of paper", ratio)
}

func gm(r *Runner, rc RunConfig) float64 { return r.gmeanDelta(r.mhNames(), rc) }

func meanEnergyDelta(r *Runner, rc RunConfig) float64 {
	var ds []float64
	for _, name := range r.mhNames() {
		base := r.Result(name, Baseline)
		v := r.Result(name, rc)
		ds = append(ds, stats.PctDelta(v.Energy.Total(), base.Energy.Total()))
	}
	return stats.Mean(ds)
}

func mlpRatio(r *Runner) float64 {
	var ra, rb []float64
	for _, name := range r.mhNames() {
		a := r.Result(name, Runahead).Stats
		b := r.Result(name, BufferCC).Stats
		ra = append(ra, stats.Ratio(a.RunaheadMissesLLC, a.RunaheadIntervals))
		rb = append(rb, stats.Ratio(b.RunaheadMissesLLC, b.RunaheadIntervals))
	}
	// Div, not /: a run short enough to never enter runahead leaves both
	// means zero, and 0/0 would put NaN into the claims table and -json.
	return stats.Div(stats.Mean(rb), stats.Mean(ra))
}

// StorageOverheadBytes computes the runahead buffer system's hardware cost
// from the configuration, the quantity the paper totals to 1.7 kB: the
// buffer itself, the chain cache, the ROB uop storage (4 bytes per entry),
// the chain bit vector, and the source register search list.
func StorageOverheadBytes(cfg core.Config) int {
	buffer := cfg.RunaheadBufferSize * 8
	chainCache := cfg.ChainCacheEntries * cfg.MaxChainLength * 8
	robUops := cfg.ROBSize * 4
	bitvec := (cfg.ROBSize + 7) / 8
	srsl := cfg.SRSLSize * 2
	return buffer + chainCache + robUops + bitvec + srsl
}

// Claims lists the paper's headline quantitative statements in paper order.
func Claims() []Claim {
	return []Claim{
		{ID: "perf-ra", Description: "GMean IPC gain, traditional runahead (no PF)",
			Paper: 14.3, Unit: "%", Measure: func(r *Runner) float64 { return gm(r, Runahead) }},
		{ID: "perf-rb", Description: "GMean IPC gain, runahead buffer",
			Paper: 14.4, Unit: "%", Measure: func(r *Runner) float64 { return gm(r, Buffer) }},
		{ID: "perf-rbcc", Description: "GMean IPC gain, runahead buffer + chain cache",
			Paper: 17.2, Unit: "%", Measure: func(r *Runner) float64 { return gm(r, BufferCC) }},
		{ID: "perf-hybrid", Description: "GMean IPC gain, hybrid policy (best overall)",
			Paper: 21.0, Unit: "%", Measure: func(r *Runner) float64 { return gm(r, Hybrid) }},
		{ID: "perf-order", Description: "performance ordering RA <= RB <= RB+CC <= Hybrid",
			Paper: 1, Unit: "bool", Measure: func(r *Runner) float64 {
				ra, rb, cc, hy := gm(r, Runahead), gm(r, Buffer), gm(r, BufferCC), gm(r, Hybrid)
				if ra <= rb+1 && rb <= cc+1 && cc <= hy+1 {
					return 1
				}
				return 0
			},
			Check: func(m float64) (bool, string) { return m == 1, "ordering" }},
		{ID: "perf-pf", Description: "GMean IPC gain, stream prefetcher alone",
			Paper: 37.5, Unit: "%", Measure: func(r *Runner) float64 { return gm(r, Baseline.WithPF()) }},
		{ID: "perf-hybrid-pf", Description: "GMean IPC gain, hybrid + prefetcher (best overall)",
			Paper: 51.5, Unit: "%", Measure: func(r *Runner) float64 { return gm(r, Hybrid.WithPF()) }},
		{ID: "mlp-ratio", Description: "buffer MLP / traditional runahead MLP (misses per interval)",
			Paper: 2.0, Unit: "x", Measure: mlpRatio,
			Check: func(m float64) (bool, string) {
				return m > 1.3, fmt.Sprintf("buffer generates %.1fx the misses", m)
			}},
		{ID: "fe-gated", Description: "% of cycles in runahead buffer mode (front end gated)",
			Paper: 47, Unit: "%", Measure: func(r *Runner) float64 {
				var vs []float64
				for _, name := range r.mhNames() {
					st := r.Result(name, BufferCC).Stats
					vs = append(vs, 100*stats.Div(float64(st.RunaheadBufferCycles), float64(st.Cycles)))
				}
				return stats.Mean(vs)
			}},
		{ID: "hybrid-split", Description: "% of runahead cycles the hybrid spends in buffer mode",
			Paper: 71, Unit: "%", Measure: func(r *Runner) float64 {
				var vs []float64
				for _, name := range r.mhNames() {
					st := r.Result(name, Hybrid).Stats
					if st.RunaheadCycles > 0 {
						vs = append(vs, 100*float64(st.RunaheadBufferCycles)/float64(st.RunaheadCycles))
					}
				}
				return stats.Mean(vs)
			}},
		{ID: "cc-exact", Description: "% of chain cache hits exactly matching the ROB chain",
			Paper: 53, Unit: "%", Measure: func(r *Runner) float64 {
				var vs []float64
				for _, name := range r.mhNames() {
					st := r.Result(name, BufferCC).Stats
					if st.ChainCacheChecked > 0 {
						vs = append(vs, stats.Pct(st.ChainCacheExact, st.ChainCacheChecked))
					}
				}
				return stats.Mean(vs)
			},
			Check: func(m float64) (bool, string) {
				return m > 40 && m <= 100, "mostly-exact with inaccurate outliers"
			}},
		{ID: "energy-ra", Description: "energy of traditional runahead (front end burns power)",
			Paper: 44, Unit: "%", Measure: func(r *Runner) float64 { return meanEnergyDelta(r, Runahead) }},
		{ID: "energy-ra-enh", Description: "energy of runahead with efficiency enhancements",
			Paper: 9, Unit: "%", Measure: func(r *Runner) float64 { return meanEnergyDelta(r, RunaheadEnh) }},
		{ID: "energy-rbcc", Description: "energy of runahead buffer + chain cache (a saving)",
			Paper: -6.7, Unit: "%", Measure: func(r *Runner) float64 { return meanEnergyDelta(r, BufferCC) },
			Check: func(m float64) (bool, string) { return m < 3, "at worst roughly energy-neutral" }},
		{ID: "energy-hybrid", Description: "energy of the hybrid policy (a saving)",
			Paper: -2.3, Unit: "%", Measure: func(r *Runner) float64 { return meanEnergyDelta(r, Hybrid) },
			Check: func(m float64) (bool, string) { return m < 3, "at worst roughly energy-neutral" }},
		{ID: "traffic-ra", Description: "extra DRAM requests from traditional runahead (small)",
			Paper: 4, Unit: "%", Measure: func(r *Runner) float64 {
				var vs []float64
				for _, name := range r.mhNames() {
					base := r.Result(name, Baseline)
					v := r.Result(name, Runahead)
					vs = append(vs, stats.PctDelta(float64(v.DRAMRequests), float64(base.DRAMRequests)))
				}
				return stats.Mean(vs)
			},
			Check: func(m float64) (bool, string) { return m < 10, "runahead traffic stays small" }},
		{ID: "storage", Description: "runahead buffer system storage overhead (paper: 1.7 kB)",
			Paper: 1.7, Unit: "kB", Measure: func(r *Runner) float64 {
				return float64(StorageOverheadBytes(core.DefaultConfig())) / 1024
			},
			Check: func(m float64) (bool, string) {
				return m > 1 && m < 3, "same order as the paper's estimate"
			}},
	}
}

// Report evaluates every claim and renders a verdict table.
func Report(r *Runner) Table {
	t := Table{ID: "report", Title: "Paper claims vs. measured (shape check)",
		Columns: []string{"Claim", "Paper", "Measured", "Verdict", "Note"}}
	pass := 0
	for _, c := range Claims() {
		m := c.Measure(r)
		check := c.Check
		if check == nil {
			check = func(measured float64) (bool, string) { return defaultShape(c.Paper, measured) }
		}
		ok, note := check(m)
		verdict := "MISMATCH"
		if ok {
			verdict = "ok"
			pass++
		}
		t.AddRow(c.Description, fmt.Sprintf("%.1f%s", c.Paper, c.Unit),
			fmt.Sprintf("%.1f%s", m, c.Unit), verdict, note)
	}
	t.Notes = append(t.Notes, fmt.Sprintf("%d/%d claims reproduce in shape", pass, len(Claims())))
	t.Notes = append(t.Notes, "magnitude mismatches are the documented amplification of EXPERIMENTS.md deviation #1 (synthetic kernels are purer than SPEC)")
	return t
}
