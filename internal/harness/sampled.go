package harness

import (
	"fmt"
	"runtime"
	"sync"

	"runaheadsim/internal/core"
	"runaheadsim/internal/energy"
	"runaheadsim/internal/prog"
	"runaheadsim/internal/simcheck"
	"runaheadsim/internal/workload"
)

// SampleOptions tunes the sampled-interval engine (Options.Sample). The full
// measured region is split into Intervals detailed windows spaced evenly
// across it; a single functional fast-forward of the program drops an
// architectural checkpoint ahead of each window, and every window is then
// simulated in detail — WarmupUops to re-warm the cold microarchitectural
// state, then the window's share of the measured uops — on a bounded worker
// pool. Merged counters approximate the full run at a fraction of the
// detailed-simulation cost.
type SampleOptions struct {
	// Intervals is the number of detailed windows (0 = 4).
	Intervals int
	// WarmupUops is the detailed warmup run before each window's
	// measurement, re-warming caches and predictor from the cold
	// checkpoint state (0 = 50_000).
	WarmupUops uint64
	// WindowUops is the measured length of each window. 0 (or anything at
	// least the stratum length) measures the whole region in windows —
	// detailed-execution parity with a full run, speedup from workers
	// only. Smaller values measure just a sample of each stratum and
	// fast-forward the rest, which is where the serial speedup comes
	// from: detailed work drops from the full measured region to
	// Intervals*(WarmupUops+WindowUops).
	WindowUops uint64
	// Workers bounds how many windows simulate concurrently
	// (0 = GOMAXPROCS).
	Workers int
}

func (o SampleOptions) intervals() int {
	if o.Intervals <= 0 {
		return 4
	}
	return o.Intervals
}

func (o SampleOptions) warmupUops() uint64 {
	if o.WarmupUops == 0 {
		return 50_000
	}
	return o.WarmupUops
}

func (o SampleOptions) workers() int {
	if o.Workers <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return o.Workers
}

// checkpoint is one interval's starting state: the architectural image at
// ffUops committed uops, plus the detailed warmup and measurement lengths.
type checkpoint struct {
	id      int
	st      prog.ArchState
	warmup  uint64
	measure uint64
}

// intervalResult carries one simulated window's counters back to the merge.
type intervalResult struct {
	id       int
	st       *core.Stats
	activity energy.Activity
	llcMiss  uint64
	dramReqs uint64
	chains   []string
	err      error
}

// runSampled approximates one full run by merging sampled detailed windows.
// Any window that fails — a panic in the detailed core, a simcheck
// violation, a fast-forward fault — fails the whole run, reported under the
// lowest failing interval id.
func (r *Runner) runSampled(bench string, rc RunConfig, spec workload.Spec) (*Result, error) {
	so := *r.opts.Sample
	cfg := r.cfgFor(rc)
	p := workload.MustLoad(bench)

	full := r.opts.warmup(spec.Class)
	measure := r.opts.MeasureUops
	n := so.intervals()
	if uint64(n) > measure {
		n = 1
	}
	step := measure / uint64(n)

	// Plan the windows. Window i measures [start, start+measure_i) in
	// committed-uop coordinates of the full run; the checkpoint is taken
	// warmup uops earlier so the detailed core reaches the window warm.
	// With WindowUops below the stratum length only a sample of each
	// stratum is simulated in detail; the rest is covered by the
	// functional fast-forward.
	plan := make([]checkpoint, n)
	for i := 0; i < n; i++ {
		start := full + uint64(i)*step
		m := step
		if i == n-1 {
			m = measure - step*uint64(n-1)
		}
		if so.WindowUops > 0 && so.WindowUops < m {
			m = so.WindowUops
		}
		w := so.warmupUops()
		if w > start {
			w = start
		}
		plan[i] = checkpoint{id: i, warmup: w, measure: m}
	}

	// One interpreter streams through the program once, dropping each
	// checkpoint as it passes; the bounded channel keeps at most a couple
	// of memory images alive beyond the ones workers hold.
	label := rc.Label()
	m := r.opts.Monitor
	cks := make(chan checkpoint, 1)
	var capErr error
	go func() {
		defer close(cks)
		defer func() {
			if rec := recover(); rec != nil {
				capErr = fmt.Errorf("functional fast-forward: %v", rec)
			}
		}()
		in := prog.NewInterp(p)
		if m != nil {
			// The fast-forward's goal is the last checkpoint's position.
			last := plan[n-1]
			m.Phase(bench, label, -1, "fast-forward", full+uint64(last.id)*step-last.warmup)
			defer m.Done(bench, label, -1)
		}
		for _, ck := range plan {
			ff := full + uint64(ck.id)*step - ck.warmup
			in.Run(ff - in.Count())
			ck.st = in.ArchState()
			if m != nil {
				m.Progress(bench, label, -1, in.Count())
			}
			cks <- ck
		}
	}()

	results := make([]intervalResult, n)
	var wg sync.WaitGroup
	for w := 0; w < so.workers(); w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for ck := range cks {
				results[ck.id] = r.runInterval(bench, label, cfg, p, ck)
			}
		}()
	}
	wg.Wait()

	if capErr != nil {
		return nil, capErr
	}
	merged := core.NewStats()
	var act energy.Activity
	act.Stats = merged
	var llcMisses uint64
	res := &Result{Bench: bench, Config: rc, Stats: merged}
	for i := range results {
		ir := &results[i]
		if ir.err != nil {
			return nil, ir.err
		}
		if ir.st == nil {
			return nil, fmt.Errorf("interval %d: no result", i)
		}
		merged.Merge(ir.st)
		act.L1DAccesses += ir.activity.L1DAccesses
		act.L1IAccesses += ir.activity.L1IAccesses
		act.LLCAccesses += ir.activity.LLCAccesses
		act.DRAMReads += ir.activity.DRAMReads
		act.DRAMWrites += ir.activity.DRAMWrites
		act.DRAMActivates += ir.activity.DRAMActivates
		llcMisses += ir.llcMiss
		res.DRAMRequests += ir.dramReqs
		if len(ir.chains) > 0 {
			res.Chains = ir.chains // keep the latest window's chains
		}
	}
	// The energy model is linear in its counters, so computing it over the
	// summed activity equals summing per-window breakdowns.
	res.Energy = energy.Compute(energy.DefaultParams(), act)
	res.IPC = merged.IPC()
	res.MPKI = 1000 * float64(llcMisses) / float64(merged.Committed)
	res.MemStallPct = 100 * float64(merged.MemStallCycles) / float64(merged.Cycles)
	return res, nil
}

// runInterval simulates one detailed window from its checkpoint. Panics
// (core bugs, simcheck violations) surface as errors tagged with the
// interval id rather than killing the worker pool; a dying interval dumps
// its flight recorder first when FlightDumpDir is set.
func (r *Runner) runInterval(bench, label string, cfg core.Config, p *prog.Program, ck checkpoint) (ir intervalResult) {
	ir.id = ck.id
	m := r.opts.Monitor
	var c *core.Core
	defer func() {
		if rec := recover(); rec != nil {
			if c != nil {
				name := fmt.Sprintf("flight-%s-%s-i%d", bench, label, ck.id)
				if path := writeFlightDump(r.opts.FlightDumpDir, name, c); path != "" {
					rec = fmt.Sprintf("%v\n  (flight recorder dumped to %s)", rec, path)
				}
			}
			ir.err = fmt.Errorf("interval %d: %v", ck.id, rec)
		}
		if m != nil {
			m.Done(bench, label, ck.id)
		}
	}()
	c = core.NewFromArch(cfg, p, ck.st)
	var chk *simcheck.Checker
	if r.opts.Check || simcheck.TagEnabled {
		chk = simcheck.AttachResumed(c, p, simcheck.Options{})
	}
	var report func(uint64)
	if m != nil {
		report = func(done uint64) { m.Progress(bench, label, ck.id, done) }
		m.Phase(bench, label, ck.id, "warmup", ck.warmup)
	}
	chunkRun(c, ck.warmup, report)
	c.ResetStats()
	if m != nil {
		m.Phase(bench, label, ck.id, "measure", ck.measure)
	}
	ir.st = chunkRun(c, ck.measure, report)
	if chk != nil {
		chk.Finish()
	}
	ir.activity = energy.Measure(c)
	ir.llcMiss = c.Hierarchy().LLCDemandMisses
	ir.dramReqs = c.Hierarchy().TotalDRAMRequests()
	for _, chain := range c.CachedChains() {
		ir.chains = append(ir.chains, chain.String())
	}
	return ir
}
