package harness

import (
	"fmt"
	"runtime"
	"sort"
	"sync"

	"runaheadsim/internal/core"
	"runaheadsim/internal/energy"
	"runaheadsim/internal/phases"
	"runaheadsim/internal/prog"
	"runaheadsim/internal/simcheck"
	"runaheadsim/internal/stats"
	"runaheadsim/internal/workload"
)

// Sampling modes. SampleEven is PR 3's engine: N windows spaced evenly
// across the measured region, merged unweighted. SamplePhase is the
// SimPoint-style engine: the functional fast-forward first profiles
// basic-block vectors over a fine window grid, deterministic k-means groups
// the windows into phases, and only one representative window per phase is
// simulated in detail, its counters scaled up by the uops its phase covers.
const (
	SampleEven  = "even"
	SamplePhase = "phase"
)

// SampleOptions tunes the sampled-interval engine (Options.Sample). The full
// measured region is covered by detailed windows — evenly spaced, or one per
// behavior phase — each reached by restoring an architectural checkpoint
// dropped during a single functional fast-forward, then re-warmed with
// WarmupUops of detailed simulation before measuring.
type SampleOptions struct {
	// Mode selects window placement: SampleEven (default) or SamplePhase.
	Mode string
	// Intervals is the number of detailed windows in even mode, and the cap
	// on the BIC phase search in phase mode (0 = 4). Phase mode therefore
	// never simulates more detailed windows than even mode would.
	Intervals int
	// WarmupUops is the detailed warmup run before each window's
	// measurement, re-warming caches and predictor from the cold
	// checkpoint state (0 = 50_000).
	WarmupUops uint64
	// WindowUops is the measured length of each window. 0 (or anything at
	// least the stratum length) measures the whole region in windows —
	// detailed-execution parity with a full run, speedup from workers
	// only. Smaller values measure just a sample of each stratum and
	// fast-forward the rest, which is where the serial speedup comes
	// from: detailed work drops from the full measured region to
	// Intervals*(WarmupUops+WindowUops).
	WindowUops uint64
	// Workers bounds how many windows simulate concurrently
	// (0 = GOMAXPROCS).
	Workers int

	// Phases, when positive, pins the phase count in phase mode instead of
	// the BIC search (the -phases override).
	Phases int
	// BBVWindows is the number of windows in the phase-mode BBV profiling
	// grid (0 = 32, clamped so every window is at least one uop). More
	// windows resolve finer phase structure at slightly more functional
	// work; the detailed cost is governed by the phase count, not the grid.
	BBVWindows int
}

func (o SampleOptions) intervals() int {
	if o.Intervals <= 0 {
		return 4
	}
	return o.Intervals
}

func (o SampleOptions) warmupUops() uint64 {
	if o.WarmupUops == 0 {
		return 50_000
	}
	return o.WarmupUops
}

func (o SampleOptions) workers() int {
	if o.Workers <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return o.Workers
}

func (o SampleOptions) phaseMode() bool { return o.Mode == SamplePhase }

func (o SampleOptions) bbvWindows() int {
	if o.BBVWindows <= 0 {
		return 32
	}
	return o.BBVWindows
}

// checkpoint is one detailed window of the plan: the architectural image at
// its fast-forward point, the detailed warmup and measurement lengths, and
// the merge weight its counters carry.
type checkpoint struct {
	id      int
	st      prog.ArchState
	start   uint64 // committed-uop offset of the measured window's first uop
	warmup  uint64
	measure uint64
	// Merged counters scale by wnum/wden: the uops this window stands in
	// for over the uops it actually measures. Even mode windows tile their
	// strata and merge unweighted (1/1).
	wnum, wden uint64
}

// ffStart returns the committed-uop offset the functional fast-forward must
// reach before this window's checkpoint is taken, saturating at zero so an
// oversized warmup can never wrap the progress goal around uint64.
func (ck checkpoint) ffStart() uint64 {
	if ck.warmup > ck.start {
		return 0
	}
	return ck.start - ck.warmup
}

// planEven places n evenly spaced windows over the measured region
// [full, full+measure). Window i owns stratum [full+i*step, full+(i+1)*step),
// with the division remainder folded into the last stratum so the strata
// tile the region exactly — no overrun past the region end and no
// double-counted uops in the merged weights. A window measures its whole
// stratum, or just WindowUops of it when a smaller sample is requested.
func planEven(full, measure uint64, so SampleOptions) []checkpoint {
	n := so.intervals()
	if uint64(n) > measure {
		n = 1
	}
	step := measure / uint64(n)
	plan := make([]checkpoint, n)
	for i := 0; i < n; i++ {
		start := full + uint64(i)*step
		m := step
		if i == n-1 {
			m = measure - step*uint64(n-1)
		}
		if so.WindowUops > 0 && so.WindowUops < m {
			m = so.WindowUops
		}
		w := so.warmupUops()
		if w > start {
			w = start
		}
		plan[i] = checkpoint{id: i, start: start, warmup: w, measure: m, wnum: 1, wden: 1}
	}
	return plan
}

// planFromPhases turns a phase-analysis plan into checkpoints. The full
// Intervals window budget is allocated across phases proportionally to their
// uop weight (d'Hondt highest averages, so a 1-phase workload still gets all
// Intervals windows): a phase with one window simulates its representative;
// a phase with several stratifies its member list into contiguous chunks and
// simulates the member of each chunk closest to the phase centroid, each
// window carrying its chunk's exact uop weight. The measured length is
// WindowUops when set (the SimPoint shape — measurement length independent
// of the profiling grid's resolution), the grid window otherwise, clamped so
// no window overruns the measured region's end. Detailed cost therefore
// never exceeds even mode's at the same settings. The returned checkpoints
// are in ascending start order, so the fast-forward streams them in one
// pass.
func planFromPhases(plan *phases.Plan, so SampleOptions, regionEnd uint64) []checkpoint {
	k := len(plan.Phases)
	n := so.intervals()
	if n < k {
		n = k
	}
	// Highest-averages allocation of the n windows: each extra window goes
	// to the phase maximizing Weight/(alloc+1), capped at its member count;
	// ties break to the lowest phase index.
	alloc := make([]int, k)
	for i := range alloc {
		alloc[i] = 1
	}
	for given := k; given < n; given++ {
		best := -1
		for i, ph := range plan.Phases {
			if alloc[i] >= len(ph.Members) {
				continue
			}
			if best < 0 || ph.Weight*uint64(alloc[best]+1) > plan.Phases[best].Weight*uint64(alloc[i]+1) {
				best = i
			}
		}
		if best < 0 {
			break // every phase already simulates all its windows
		}
		alloc[best]++
	}

	var cks []checkpoint
	for pi, ph := range plan.Phases {
		c := alloc[pi]
		for j := 0; j < c; j++ {
			// Every chunk member belongs to the same phase, so each is
			// equally representative; taking the chunk's first keeps the
			// windows temporally stratified, and makes the k=1 degenerate
			// case reproduce even mode's placement exactly.
			chunk := ph.Members[j*len(ph.Members)/c : (j+1)*len(ph.Members)/c]
			rep := chunk[0]
			var weight uint64
			for _, mem := range chunk {
				weight += plan.Windows[mem].Len
			}
			win := plan.Windows[rep]
			m := win.Len
			if so.WindowUops > 0 {
				m = so.WindowUops
			}
			if win.Start+m > regionEnd {
				m = regionEnd - win.Start
			}
			w := so.warmupUops()
			if w > win.Start {
				w = win.Start
			}
			den := m
			if den == 0 {
				den = 1
			}
			cks = append(cks, checkpoint{start: win.Start, warmup: w, measure: m, wnum: weight, wden: den})
		}
	}
	sort.Slice(cks, func(a, b int) bool { return cks[a].start < cks[b].start })
	// Uniform weights cancel in every ratio metric (IPC, MPKI, stall
	// fractions are all ratio-of-sums, and the jackknife's leave-one-out
	// ratios scale the same way), so when every window carries the same
	// wnum/wden the plan collapses to unit weights. This skips ScaleU64's
	// per-counter rounding on the merge path, making the k=1 degenerate case
	// bit-identical to even mode rather than equal-to-within-rounding.
	uniform := true
	for i := 1; i < len(cks); i++ {
		if cks[i].wnum*cks[0].wden != cks[0].wnum*cks[i].wden {
			uniform = false
			break
		}
	}
	if uniform {
		for i := range cks {
			cks[i].wnum, cks[i].wden = 1, 1
		}
	}
	for i := range cks {
		cks[i].id = i
	}
	return cks
}

// detailedUops returns the detailed-simulation cost of a plan: every warmup
// and measured uop that runs on the out-of-order core.
func detailedUops(plan []checkpoint) uint64 {
	var n uint64
	for _, ck := range plan {
		n += ck.warmup + ck.measure
	}
	return n
}

// intervalResult carries one simulated window's counters back to the merge.
type intervalResult struct {
	id       int
	st       *core.Stats
	activity energy.Activity
	llcMiss  uint64
	dramReqs uint64
	chains   []string
	err      error
}

// runSampled approximates one full run by merging sampled detailed windows.
// Any window that fails — a panic in the detailed core, a simcheck
// violation, a fast-forward fault — fails the whole run, reported under the
// lowest failing interval id.
func (r *Runner) runSampled(bench string, rc RunConfig, spec workload.Spec) (*Result, error) {
	so := *r.opts.Sample
	cfg := r.cfgFor(rc)
	p := workload.MustLoad(bench)

	full := r.opts.warmup(spec.Class)
	measure := r.opts.MeasureUops
	label := rc.Label()
	m := r.opts.Monitor

	var plan []checkpoint
	var phasePlan *phases.Plan
	if so.phaseMode() {
		pp, err := r.profilePhases(bench, label, p, full, measure, so)
		if err != nil {
			return nil, err
		}
		phasePlan = pp
		plan = planFromPhases(phasePlan, so, full+measure)
	} else {
		plan = planEven(full, measure, so)
	}
	n := len(plan)

	// One interpreter streams through the program once, dropping each
	// checkpoint as it passes; the bounded channel keeps at most a couple
	// of memory images alive beyond the ones workers hold.
	cks := make(chan checkpoint, 1)
	var capErr error
	go func() {
		defer close(cks)
		defer func() {
			if rec := recover(); rec != nil {
				capErr = fmt.Errorf("functional fast-forward: %v", rec)
			}
		}()
		in := prog.NewInterp(p)
		if m != nil {
			// The fast-forward's goal is the last checkpoint's position,
			// saturating at zero when the warmup exceeds the window offset.
			m.Phase(bench, label, -1, "fast-forward", plan[n-1].ffStart())
			defer m.Done(bench, label, -1)
		}
		for _, ck := range plan {
			if ff := ck.ffStart(); ff > in.Count() {
				in.Run(ff - in.Count())
			}
			ck.st = in.ArchState()
			if m != nil {
				m.Progress(bench, label, -1, in.Count())
			}
			cks <- ck
		}
	}()

	results := make([]intervalResult, n)
	var wg sync.WaitGroup
	for w := 0; w < so.workers(); w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for ck := range cks {
				results[ck.id] = r.runInterval(bench, label, cfg, p, ck)
			}
		}()
	}
	wg.Wait()

	if capErr != nil {
		return nil, capErr
	}
	merged := core.NewStats()
	var act energy.Activity
	act.Stats = merged
	var llcMisses uint64
	res := &Result{Bench: bench, Config: rc, Stats: merged}
	for i := range results {
		ir := &results[i]
		if ir.err != nil {
			return nil, ir.err
		}
		if ir.st == nil {
			return nil, fmt.Errorf("interval %d: no result", i)
		}
		ck := plan[i]
		merged.MergeScaled(ir.st, ck.wnum, ck.wden)
		act.L1DAccesses += stats.ScaleU64(ir.activity.L1DAccesses, ck.wnum, ck.wden)
		act.L1IAccesses += stats.ScaleU64(ir.activity.L1IAccesses, ck.wnum, ck.wden)
		act.LLCAccesses += stats.ScaleU64(ir.activity.LLCAccesses, ck.wnum, ck.wden)
		act.DRAMReads += stats.ScaleU64(ir.activity.DRAMReads, ck.wnum, ck.wden)
		act.DRAMWrites += stats.ScaleU64(ir.activity.DRAMWrites, ck.wnum, ck.wden)
		act.DRAMActivates += stats.ScaleU64(ir.activity.DRAMActivates, ck.wnum, ck.wden)
		llcMisses += stats.ScaleU64(ir.llcMiss, ck.wnum, ck.wden)
		res.DRAMRequests += stats.ScaleU64(ir.dramReqs, ck.wnum, ck.wden)
		if len(ir.chains) > 0 {
			res.Chains = ir.chains // keep the latest window's chains
		}
	}
	// The energy model is linear in its counters, so computing it over the
	// summed activity equals summing per-window breakdowns.
	res.Energy = energy.Compute(energy.DefaultParams(), act)
	res.IPC = merged.IPC()
	res.MPKI = 1000 * stats.Div(float64(llcMisses), float64(merged.Committed))
	res.MemStallPct = 100 * stats.Div(float64(merged.MemStallCycles), float64(merged.Cycles))

	res.Sampling = &SamplingInfo{
		Mode:         so.Mode,
		Intervals:    n,
		DetailedUops: detailedUops(plan),
	}
	if res.Sampling.Mode == "" {
		res.Sampling.Mode = SampleEven
	}
	if phasePlan != nil {
		res.Sampling.BBVWindows = len(phasePlan.Windows)
		res.Sampling.Phases = phasePlan.K()
		res.Sampling.Dispersion = phasePlan.AvgDispersion()
		res.Sampling.CIs = sampleCIs(plan, results, phasePlan)
	}
	return res, nil
}

// runInterval simulates one detailed window from its checkpoint. Panics
// (core bugs, simcheck violations) surface as errors tagged with the
// interval id rather than killing the worker pool; a dying interval dumps
// its flight recorder first when FlightDumpDir is set.
func (r *Runner) runInterval(bench, label string, cfg core.Config, p *prog.Program, ck checkpoint) (ir intervalResult) {
	ir.id = ck.id
	m := r.opts.Monitor
	var c *core.Core
	defer func() {
		if rec := recover(); rec != nil {
			if c != nil {
				name := fmt.Sprintf("flight-%s-%s-i%d", bench, label, ck.id)
				if path := writeFlightDump(r.opts.FlightDumpDir, name, c); path != "" {
					rec = fmt.Sprintf("%v\n  (flight recorder dumped to %s)", rec, path)
				}
			}
			ir.err = fmt.Errorf("interval %d: %v", ck.id, rec)
		}
		if m != nil {
			m.Done(bench, label, ck.id)
		}
	}()
	c = core.NewFromArch(cfg, p, ck.st)
	var chk *simcheck.Checker
	if r.opts.Check || simcheck.TagEnabled {
		chk = simcheck.AttachResumed(c, p, simcheck.Options{})
	}
	var report func(uint64)
	if m != nil {
		report = func(done uint64) { m.Progress(bench, label, ck.id, done) }
		m.Phase(bench, label, ck.id, "warmup", ck.warmup)
	}
	chunkRun(c, ck.warmup, report)
	c.ResetStats()
	if m != nil {
		m.Phase(bench, label, ck.id, "measure", ck.measure)
	}
	ir.st = chunkRun(c, ck.measure, report)
	if chk != nil {
		chk.Finish()
	}
	ir.activity = energy.Measure(c)
	ir.llcMiss = c.Hierarchy().LLCDemandMisses
	ir.dramReqs = c.Hierarchy().TotalDRAMRequests()
	for _, chain := range c.CachedChains() {
		ir.chains = append(ir.chains, chain.String())
	}
	return ir
}
