package harness

import (
	"fmt"
	"runtime"
	"time"

	"runaheadsim/internal/multicore"
	"runaheadsim/internal/prog"
	"runaheadsim/internal/snapshot"
	"runaheadsim/internal/stats"
	"runaheadsim/internal/workload"
)

// This file benchmarks the multi-core subsystem: simulation throughput and
// multi-programmed quality (weighted speedup) of the runahead buffer against
// the baseline at 2 and 4 cores on the default memory-bound mix. Every rep
// re-proves determinism — byte-identical cluster snapshots across
// repetitions — so throughput can never come from nondeterministic
// shortcuts. cmd/runahead-sweep's -bench-mc flag writes the result to
// BENCH_mc.json; `make bench-mc` is the canonical invocation.

// benchMCReps is the timing-repetition count per (cores, config) cell; the
// reported wall time is the minimum (same rationale as benchMemReps).
const benchMCReps = 3

// DefaultBenchMCCores are the cluster sizes the multicore benchmark times.
func DefaultBenchMCCores() []int { return []int{2, 4} }

// BenchMCRun is one (core-count, configuration) timing cell.
type BenchMCRun struct {
	Cores  int      `json:"cores"`
	Mix    []string `json:"mix"`
	Config string   `json:"config"`

	SimCycles     int64  `json:"sim_cycles"`
	CommittedUops uint64 `json:"committed_uops"` // summed over cores

	WeightedSpeedup float64 `json:"weighted_speedup"`
	HmeanSlowdown   float64 `json:"hmean_slowdown"`
	MaxSlowdown     float64 `json:"max_slowdown"`

	WallSec      float64 `json:"wall_sec"`
	CyclesPerSec float64 `json:"sim_cycles_per_sec"`
	UopsPerSec   float64 `json:"committed_uops_per_sec"`

	// SnapshotDigest is the FNV digest of the drained cluster snapshot —
	// verified identical across every timing repetition before reporting.
	SnapshotDigest string `json:"snapshot_digest"`
}

// BenchMCDelta is the headline comparison at one core count: what the
// runahead buffer buys (weighted speedup) and costs (simulation throughput)
// relative to the baseline.
type BenchMCDelta struct {
	Cores int `json:"cores"`

	WSBase float64 `json:"weighted_speedup_base"`
	WSRB   float64 `json:"weighted_speedup_rb"`
	WSGain float64 `json:"weighted_speedup_gain"` // WSRB - WSBase

	CyclesPerSecBase float64 `json:"sim_cycles_per_sec_base"`
	CyclesPerSecRB   float64 `json:"sim_cycles_per_sec_rb"`
	ThroughputRatio  float64 `json:"throughput_ratio_rb_vs_base"`
}

// BenchMCReport is the BENCH_mc.json schema.
type BenchMCReport struct {
	MeasureUops uint64         `json:"measure_uops"`
	Reps        int            `json:"timing_reps"`
	Runs        []BenchMCRun   `json:"runs"`
	Deltas      []BenchMCDelta `json:"deltas"`
}

// BenchMulticore times the default memory-bound mix at each core count under
// the baseline and runahead-buffer configurations, reporting simulation
// throughput and weighted-speedup deltas. coreCounts nil selects 2 and 4
// cores; uops 0 selects 100k measured uops per core. Alone-IPC reference
// runs are memoized across all cells.
func BenchMulticore(coreCounts []int, uops uint64) (*BenchMCReport, error) {
	if len(coreCounts) == 0 {
		coreCounts = DefaultBenchMCCores()
	}
	if uops == 0 {
		uops = 100_000
	}
	alone := NewRunner(Options{MeasureUops: uops})
	rep := &BenchMCReport{MeasureUops: uops, Reps: benchMCReps}
	for _, n := range coreCounts {
		mix := DefaultMix(n)
		var cell [2]BenchMCRun
		for ci, rc := range MixConfigs() {
			run, err := benchMixCell(alone, mix, rc, uops)
			if err != nil {
				return nil, err
			}
			cell[ci] = *run
			rep.Runs = append(rep.Runs, *run)
		}
		rep.Deltas = append(rep.Deltas, BenchMCDelta{
			Cores:            n,
			WSBase:           cell[0].WeightedSpeedup,
			WSRB:             cell[1].WeightedSpeedup,
			WSGain:           cell[1].WeightedSpeedup - cell[0].WeightedSpeedup,
			CyclesPerSecBase: cell[0].CyclesPerSec,
			CyclesPerSecRB:   cell[1].CyclesPerSec,
			ThroughputRatio:  cell[1].CyclesPerSec / cell[0].CyclesPerSec,
		})
	}
	return rep, nil
}

// benchMixCell times one (mix, configuration) cell: benchMCReps repetitions
// of warmup + reset + measured region, wall time the minimum over reps, and
// a drained cluster snapshot per rep whose digests must all agree.
func benchMixCell(alone *Runner, mix []string, rc RunConfig, uops uint64) (*BenchMCRun, error) {
	cfg := configFor(rc)
	var warmup uint64
	progs := func() []*prog.Program {
		ps := make([]*prog.Program, len(mix))
		for i, b := range mix {
			ps[i] = workload.MustLoad(b)
		}
		return ps
	}
	for _, b := range mix {
		spec, ok := workload.SpecOf(b)
		if !ok {
			return nil, fmt.Errorf("harness: unknown benchmark %q in mix", b)
		}
		if w := (Options{}).warmup(spec.Class); w > warmup {
			warmup = w
		}
	}

	var best float64
	var cl *multicore.Cluster
	var digest, committed uint64
	var cycles int64
	for r := 0; r < benchMCReps; r++ {
		c := multicore.New(cfg, progs())
		c.Run(warmup)
		c.ResetStats()
		runtime.GC() // keep allocator state comparable across reps
		//simlint:allow determinism -- wall-clock timing is the measurement here, not simulated state
		t0 := time.Now()
		sts := c.Run(uops)
		sec := time.Since(t0).Seconds()
		// Capture before Snapshot: its drain keeps committing in-flight
		// uops, and the measurement window ends at the quota run.
		committed, cycles = 0, sts[0].Cycles
		for _, st := range sts {
			committed += st.Committed
		}
		snap, err := c.Snapshot()
		if err != nil {
			return nil, fmt.Errorf("%v/%dc: %w", rc.Label(), len(mix), err)
		}
		d := snapshot.HashBytes(snap)
		if r > 0 && d != digest {
			return nil, fmt.Errorf("%v/%dc: nondeterministic — cluster snapshots differ across repetitions",
				rc.Label(), len(mix))
		}
		digest = d
		if r == 0 || sec < best {
			best = sec
		}
		cl = c
	}

	run := &BenchMCRun{
		Cores: len(mix), Mix: mix, Config: rc.Label(),
		WallSec: best, SnapshotDigest: fmt.Sprintf("%016x", digest),
	}
	var invSum float64
	for i, b := range mix {
		fin := cl.FinishCycle(i)
		ipcShared := stats.Div(float64(uops), float64(fin))
		ipcAlone := alone.Result(b, rc).IPC
		sd := stats.Div(ipcAlone, ipcShared)
		run.WeightedSpeedup += stats.Div(ipcShared, ipcAlone)
		invSum += stats.Div(1, sd)
		if sd > run.MaxSlowdown {
			run.MaxSlowdown = sd
		}
	}
	run.HmeanSlowdown = stats.Div(float64(len(mix)), invSum)
	run.CommittedUops = committed
	run.SimCycles = cycles
	run.CyclesPerSec = float64(run.SimCycles) / best
	run.UopsPerSec = float64(run.CommittedUops) / best
	return run, nil
}
