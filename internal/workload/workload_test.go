package workload

import (
	"testing"

	"runaheadsim/internal/core"
	"runaheadsim/internal/isa"
	"runaheadsim/internal/prog"
)

func TestAllBenchmarksBuildAndValidate(t *testing.T) {
	for _, s := range All() {
		p, err := Load(s.Name)
		if err != nil {
			t.Fatalf("%s: %v", s.Name, err)
		}
		if p.NumUops() == 0 {
			t.Fatalf("%s: empty program", s.Name)
		}
	}
	if len(All()) != 29 {
		t.Fatalf("expected 29 benchmarks, have %d", len(All()))
	}
	if len(MediumHigh()) != 13 {
		t.Fatalf("expected 13 medium+high benchmarks, have %d", len(MediumHigh()))
	}
}

func TestLoadUnknownName(t *testing.T) {
	if _, err := Load("nosuchbench"); err == nil {
		t.Fatal("unknown benchmark must error")
	}
}

func TestLoadIsCached(t *testing.T) {
	a := MustLoad("mcf")
	b := MustLoad("mcf")
	if a != b {
		t.Fatal("Load must cache programs")
	}
}

func TestSpecOf(t *testing.T) {
	s, ok := SpecOf("omnetpp")
	if !ok || s.Class != High {
		t.Fatalf("SpecOf(omnetpp) = %+v, %v", s, ok)
	}
	if _, ok := SpecOf("nope"); ok {
		t.Fatal("SpecOf must reject unknown names")
	}
}

// TestInterpreterRunsAllBenchmarks checks each program is functionally sound
// (no interpreter panics, registers stay plausible) for a long run.
func TestInterpreterRunsAllBenchmarks(t *testing.T) {
	for _, s := range All() {
		in := prog.NewInterp(MustLoad(s.Name))
		in.Run(50_000)
		if in.Count() != 50_000 {
			t.Fatalf("%s: interpreter stopped early", s.Name)
		}
	}
}

// runFor runs a benchmark on the baseline core for n committed uops after a
// cache warmup (small-footprint benchmarks need to wrap their arrays before
// steady-state MPKI emerges).
func runFor(t *testing.T, name string, mode core.Mode, warm, n uint64) (*core.Core, *core.Stats) {
	t.Helper()
	cfg := core.DefaultConfig()
	cfg.Mode = mode
	c := core.New(cfg, MustLoad(name))
	c.Run(warm)
	c.ResetStats()
	st := c.Run(n)
	return c, st
}

// mpki computes LLC demand misses per thousand committed uops.
func mpki(c *core.Core, st *core.Stats) float64 {
	return 1000 * float64(c.Hierarchy().LLCDemandMisses) / float64(st.Committed)
}

// TestMemoryIntensityClasses verifies the Table 2 calibration: every
// benchmark lands in its published MPKI band (Low <= 2, Medium 2-10, High
// >= 10), which the whole evaluation hangs off.
func TestMemoryIntensityClasses(t *testing.T) {
	if testing.Short() {
		t.Skip("calibration sweep is slow")
	}
	for _, s := range All() {
		s := s
		t.Run(s.Name, func(t *testing.T) {
			t.Parallel()
			warm := uint64(100_000)
			if s.Class == Low {
				warm = 500_000 // wrap the small arrays so cold misses age out
			}
			c, st := runFor(t, s.Name, core.ModeNone, warm, 100_000)
			m := mpki(c, st)
			switch s.Class {
			case Low:
				if m > 2.5 {
					t.Fatalf("MPKI %.1f too high for a low-intensity benchmark", m)
				}
			case Medium:
				if m < 1.5 || m > 12 {
					t.Fatalf("MPKI %.1f outside the medium band", m)
				}
			case High:
				if m < 9 {
					t.Fatalf("MPKI %.1f too low for a high-intensity benchmark", m)
				}
			}
		})
	}
}

// TestEquivalenceOnSuite spot-checks architectural equivalence of the OoO
// core against the interpreter on one benchmark per family, under the most
// invasive mode (hybrid runahead).
func TestEquivalenceOnSuite(t *testing.T) {
	for _, name := range []string{"mcf", "libquantum", "omnetpp", "zeusmp", "gobmk", "sphinx3"} {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			cfg := core.DefaultConfig()
			cfg.Mode = core.ModeHybrid
			p := MustLoad(name)
			c := core.New(cfg, p)
			st := c.Run(30_000)
			in := prog.NewInterp(p)
			in.Run(st.Committed)
			regs := c.ArchRegs()
			for r := 0; r < isa.NumArchRegs; r++ {
				if regs[r] != in.Regs[r] {
					t.Fatalf("r%d = %d, interpreter has %d", r, regs[r], in.Regs[r])
				}
			}
			if !c.Mem().Equal(in.Mem) {
				addr, _ := c.Mem().FirstDiff(in.Mem)
				t.Fatalf("memory differs at %#x", addr)
			}
		})
	}
}

// TestChainLengthCalibration verifies the Figure 5 shape: mcf-class chains
// are short, sphinx3's exceed the 32-uop cap, omnetpp's are the longest.
func TestChainLengthCalibration(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	lengths := map[string]float64{}
	for _, name := range []string{"mcf", "sphinx3", "omnetpp"} {
		cfg := core.DefaultConfig()
		cfg.Mode = core.ModeTraditional
		cfg.DepTrack = true
		c := core.New(cfg, MustLoad(name))
		st := c.Run(60_000)
		if st.ChainLengths.Count == 0 {
			t.Fatalf("%s: no chains traced", name)
		}
		lengths[name] = st.ChainLengths.Mean()
	}
	if lengths["mcf"] >= 20 {
		t.Fatalf("mcf chain length %.1f should be short", lengths["mcf"])
	}
	if lengths["sphinx3"] <= 32 {
		t.Fatalf("sphinx3 chain length %.1f should exceed the 32-uop cap", lengths["sphinx3"])
	}
	if lengths["omnetpp"] <= lengths["mcf"] {
		t.Fatalf("omnetpp chains (%.1f) should be longer than mcf's (%.1f)",
			lengths["omnetpp"], lengths["mcf"])
	}
}

// TestPrefetcherFriendliness: the stream prefetcher must help libquantum
// (sequential) far more than zeusmp (47-line stride).
func TestPrefetcherFriendliness(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	speedup := func(name string) float64 {
		base := core.DefaultConfig()
		c1 := core.New(base, MustLoad(name))
		s1 := c1.Run(40_000)
		s1.Cycles = c1.Now()
		pf := core.DefaultConfig()
		pf.Mem.EnablePrefetch = true
		c2 := core.New(pf, MustLoad(name))
		s2 := c2.Run(40_000)
		s2.Cycles = c2.Now()
		return s2.IPC() / s1.IPC()
	}
	libq := speedup("libquantum")
	zeus := speedup("zeusmp")
	if libq < 1.15 {
		t.Fatalf("prefetcher speedup on libquantum = %.2fx, expected large", libq)
	}
	if zeus > libq*0.8 {
		t.Fatalf("prefetcher should help zeusmp (%.2fx) far less than libquantum (%.2fx)", zeus, libq)
	}
}

// TestEquivalenceSoak is the long-run version of the equivalence check:
// a quarter-million uops of the two most complex benchmarks under the most
// invasive configuration. Rare state-restoration bugs (a poison bit or RAT
// entry surviving an exit) surface here.
func TestEquivalenceSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test is slow")
	}
	for _, name := range []string{"mcf", "omnetpp"} {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			cfg := core.DefaultConfig()
			cfg.Mode = core.ModeHybrid
			cfg.Enhancements = true
			cfg.Mem.EnablePrefetch = true
			p := MustLoad(name)
			c := core.New(cfg, p)
			st := c.Run(250_000)
			in := prog.NewInterp(p)
			in.Run(st.Committed)
			regs := c.ArchRegs()
			for r := 0; r < isa.NumArchRegs; r++ {
				if regs[r] != in.Regs[r] {
					t.Fatalf("r%d = %d, interpreter has %d after %d uops",
						r, regs[r], in.Regs[r], st.Committed)
				}
			}
			if !c.Mem().Equal(in.Mem) {
				addr, _ := c.Mem().FirstDiff(in.Mem)
				t.Fatalf("memory differs at %#x", addr)
			}
		})
	}
}
