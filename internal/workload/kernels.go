package workload

import (
	"runaheadsim/internal/isa"
	"runaheadsim/internal/prog"
)

// Register allocation conventions shared by the kernel families.
const (
	rI    = isa.Reg(1)  // iteration counter
	rIdx  = isa.Reg(2)  // derived index
	rAddr = isa.Reg(3)  // effective address scratch
	rV    = isa.Reg(4)  // loaded value
	rAcc  = isa.Reg(5)  // accumulator (depends on loads)
	rMask = isa.Reg(6)  // footprint mask
	rBase = isa.Reg(7)  // data base
	rT    = isa.Reg(8)  // scratch
	rOff  = isa.Reg(9)  // streaming offset
	rLim  = isa.Reg(10) // streaming limit
	rB    = isa.Reg(11) // branch condition scratch
	// rF0..rF5 are filler chains; rBaseN+k are bases for multi-array kernels.
	rF0    = isa.Reg(24)
	rBaseN = isa.Reg(16)
)

// Pseudo-random index constants; arithmetic index generation keeps memory
// images small (untouched pages read as zero and are never cloned).
const (
	prime1 = 40503
	prime2 = 2654435761
)

// filler emits n "other operations" — the work traditional runahead wastes
// fetch bandwidth on (Figure 3). The ops rotate across six destination
// registers so they form six short independent chains: plenty of ILP, they
// never bound execution, and (seeded from rV) they are poisoned during
// runahead rather than slowing it down.
func filler(bb *prog.BlockBuilder, n int) {
	for k := 0; k < n; k++ {
		dst := rF0 + isa.Reg(k%6)
		switch k % 8 {
		case 0:
			bb.Op(isa.ADD, dst, dst, rV)
		case 3:
			bb.Op(isa.FADD, dst, dst, rAcc)
		case 6:
			bb.Op(isa.FMUL, dst, dst, rV)
		default:
			bb.OpI(isa.ADDI, dst, dst, int64(k*7+1))
		}
	}
}

// gather builds an indexed-load kernel: each iteration derives a
// pseudo-random slot from the induction variable through chainALU dependent
// ALU ops, loads from a large footprint (the miss), then burns fillerOps
// load-dependent operations. Iterations are independent, so the filtered
// chain is short and repetitive — runahead-buffer heaven (mcf, soplex) — or,
// with a long chainALU, just over the 32-uop cap (sphinx3). With variants,
// a hash-directed branch alternates between two differently-coded index
// chains, so cached chains frequently mismatch the ROB (Figure 13's sphinx).
// seqMix adds a prefetcher-friendly sequential operand stream (milc).
func gather(name string, footprint uint64, chainALU, fillerOps, seqMix int, variants bool) *prog.Program {
	b := prog.NewBuilder(name)
	const slotBytes = 2112 // 33 lines: non-power-of-two spreads DRAM rows
	slots := footprint / slotBytes
	mask := uint64(1)
	for mask*2 <= slots {
		mask *= 2
	}
	mask--
	data := b.Alloc(footprint, 64)
	var seq uint64
	if seqMix > 0 {
		seq = b.Alloc(16<<20, 64)
	}
	entry := b.Block("entry")
	loop := b.Block("loop")
	entry.Movi(rI, 0).
		Movi(rAcc, 0).
		Movi(rMask, int64(mask)).
		Movi(rBase, int64(data)).
		Movi(rOff, 0)
	if seqMix > 0 {
		entry.Emit(isa.Uop{Op: isa.MOVI, Dst: rBaseN, Imm: int64(seq)})
	}
	entry.Jmp(loop)

	emitChain := func(bb *prog.BlockBuilder, salt int64) {
		bb.OpI(isa.MULI, rIdx, rI, prime1+salt)
		for k := 0; k < chainALU; k++ {
			if k%2 == 0 {
				bb.OpI(isa.ADDI, rIdx, rIdx, int64(k*1023+7)+salt)
			} else {
				bb.OpI(isa.MULI, rIdx, rIdx, prime2|1)
			}
		}
	}

	var miss *prog.BlockBuilder
	if variants {
		// Layout: loop -> vara (fall-through) | alt (taken) -> miss.
		vara := b.Block("vara")
		alt := b.Block("alt")
		miss = b.Block("miss")
		loop.OpI(isa.MULI, rB, rI, prime2|1).
			OpI(isa.ANDI, rB, rB, 1<<16).
			Bnez(rB, alt)
		emitChain(vara, 0)
		vara.Jmp(miss)
		// The salt must be even so prime1+salt stays odd and the affine index
		// map i -> A*i+B keeps a full-period orbit over the slot mask.
		emitChain(alt, 16)
	} else {
		miss = loop
		emitChain(loop, 0)
	}
	miss.Op(isa.AND, rIdx, rIdx, rMask).
		OpI(isa.MULI, rAddr, rIdx, slotBytes).
		Add(rAddr, rAddr, rBase).
		Ld(rV, rAddr, 0). // the miss
		Add(rAcc, rAcc, rV)
	if seqMix > 0 {
		miss.Add(rT, rBaseN, rOff).
			Ld(rB, rT, 0).
			Op(isa.FADD, rAcc, rAcc, rB).
			Addi(rOff, rOff, 8).
			OpI(isa.ANDI, rOff, rOff, (16<<20)-1)
	}
	filler(miss, fillerOps)
	miss.Addi(rI, rI, 1).Jmp(loop)
	return b.MustBuild()
}

// stream builds a sequential multi-array sweep (libquantum, lbm, bwaves,
// leslie3d, GemsFDTD, wrf): one load per array per iteration, a line miss
// every eighth element, short induction-only chains, and ideal stream
// prefetcher behaviour. stores > 0 adds a store to the last array every
// iteration (lbm's write traffic).
func stream(name string, arrays int, footprint uint64, fillerOps, stores int) *prog.Program {
	b := prog.NewBuilder(name)
	per := (footprint / uint64(arrays)) &^ 4095
	bases := make([]uint64, arrays)
	for i := range bases {
		bases[i] = b.Alloc(per, 64)
	}
	entry := b.Block("entry")
	loop := b.Block("loop")
	entry.Movi(rOff, 0).Movi(rLim, int64(per)).Movi(rAcc, 0)
	for i := range bases {
		entry.Emit(isa.Uop{Op: isa.MOVI, Dst: rBaseN + isa.Reg(i), Imm: int64(bases[i])})
	}
	entry.Jmp(loop)
	for i := 0; i < arrays; i++ {
		loop.Add(rAddr, rBaseN+isa.Reg(i), rOff).
			Ld(rV, rAddr, 0).
			Op(isa.FADD, rAcc, rAcc, rV)
	}
	filler(loop, fillerOps)
	if stores > 0 {
		loop.Add(rAddr, rBaseN+isa.Reg(arrays-1), rOff).
			St(rAddr, 0, rAcc)
	}
	loop.Addi(rOff, rOff, 8).
		Blt(rOff, rLim, loop)
	wrap := b.Block("wrap")
	wrap.Movi(rOff, 0).Jmp(loop)
	return b.MustBuild()
}

// stencil builds a strided sweep: eight 8-byte elements are consumed within
// one line, then the walk jumps `stride` bytes (an odd multiple of the line
// size). The jump exceeds the stream prefetcher's tracking window, so
// prefetching cannot help but runahead can (zeusmp, cactusADM); the odd
// stride walks the whole power-of-two footprint before repeating, and the
// eight-element dwell keeps MPKI in the medium band while the loop body
// stays small enough for the ROB to hold several iterations (chain
// generation needs a second instance of the blocking PC).
func stencil(name string, footprint uint64, stride int64, arrays, fillerOps int) *prog.Program {
	b := prog.NewBuilder(name)
	per := uint64(1)
	for per*2 <= footprint/uint64(arrays) {
		per *= 2
	}
	bases := make([]uint64, arrays)
	for i := range bases {
		bases[i] = b.Alloc(per, 64)
	}
	const rSix = isa.Reg(20)
	entry := b.Block("entry")
	loop := b.Block("loop")
	entry.Movi(rOff, 0).Movi(rAcc, 0).Movi(rSix, 6)
	for i := range bases {
		entry.Emit(isa.Uop{Op: isa.MOVI, Dst: rBaseN + isa.Reg(i), Imm: int64(bases[i])})
	}
	entry.Jmp(loop)
	// The walk consumes 8-byte elements sequentially (rOff += 8) but the
	// line placement is shuffled by the odd stride: line = (rOff/64)*stride
	// masked to the footprint, element = rOff%64. Every address-chain op
	// recurs every iteration, so the filtered chain is complete and
	// self-advancing — one line jump per eight chain iterations.
	loop.Op(isa.SHR, rIdx, rOff, rSix).
		OpI(isa.MULI, rIdx, rIdx, stride).
		OpI(isa.ANDI, rIdx, rIdx, int64(per-1)&^63).
		OpI(isa.ANDI, rT, rOff, 56)
	for i := 0; i < arrays; i++ {
		loop.Add(rAddr, rBaseN+isa.Reg(i), rIdx).
			LdScaled(rV, rAddr, rT, 1, 0).
			Op(isa.FADD, rAcc, rAcc, rV)
	}
	filler(loop, fillerOps)
	loop.Addi(rOff, rOff, 8).Jmp(loop)
	return b.MustBuild()
}

// walk builds omnetpp's stand-in: each iteration reseeds an index from the
// induction variable and descends `levels` tree levels. Every level loads,
// folds the loaded value into the index (so the dependence chain threads
// through every load), and branches on a hash bit — the path, and therefore
// the chain, varies per iteration, chains run past 32 uops (Figure 5's 70),
// and the branches are hard to predict. Only the final level touches the
// large footprint, keeping MPKI in omnetpp's range.
func walk(name string, footprint uint64, levels int) *prog.Program {
	b := prog.NewBuilder(name)
	mask := uint64(1)
	for mask*2 <= footprint/64 {
		mask *= 2
	}
	mask--
	big := b.Alloc(footprint, 64)
	// The upper tree levels live in a region small enough to stay resident
	// even while runahead's own fills churn the LLC — otherwise runahead
	// poisons its own address chains and self-destructs.
	small := b.Alloc(24<<10, 64)
	smallMask := int64(24<<10 - 64)

	entry := b.Block("entry")
	entry.Movi(rI, 0).
		Movi(rAcc, 0).
		Movi(rMask, int64(mask)).
		Movi(rBase, int64(big)).
		Movi(rBaseN, int64(small))

	loop := b.Block("loop")
	entry.Jmp(loop)
	loop.OpI(isa.MULI, rIdx, rI, prime2|1).
		OpI(isa.ADDI, rIdx, rIdx, 12345)

	type lvl struct{ body, left, right *prog.BlockBuilder }
	lvls := make([]lvl, levels)
	for i := range lvls {
		lvls[i].body = b.Block("level")
		lvls[i].left = b.Block("left")
		lvls[i].right = b.Block("right")
	}
	tail := b.Block("tail")
	loop.Jmp(lvls[0].body)
	for i := range lvls {
		body, left, right := lvls[i].body, lvls[i].left, lvls[i].right
		if i < levels-1 {
			body.OpI(isa.MULI, rAddr, rIdx, 241).
				OpI(isa.ANDI, rAddr, rAddr, smallMask).
				OpI(isa.ANDI, rAddr, rAddr, ^int64(7)).
				Add(rAddr, rAddr, rBaseN).
				Ld(rV, rAddr, 0)
		} else {
			// Final level: the big footprint — the miss.
			body.OpI(isa.MULI, rAddr, rIdx, prime1).
				Op(isa.AND, rAddr, rAddr, rMask).
				OpI(isa.MULI, rAddr, rAddr, 64).
				Add(rAddr, rAddr, rBase).
				Ld(rV, rAddr, 0)
		}
		body.Op(isa.ADD, rT, rV, rIdx).
			OpI(isa.MULI, rT, rT, prime2|1).
			OpI(isa.ANDI, rB, rT, 1<<17).
			Bnez(rB, right)
		next := tail
		if i < levels-1 {
			next = lvls[i+1].body
		}
		// The index update folds in the loaded value: the miss chain threads
		// through every level's load.
		left.OpI(isa.MULI, rIdx, rIdx, 3).
			Op(isa.ADD, rIdx, rIdx, rV).
			OpI(isa.ADDI, rIdx, rIdx, 1).
			Jmp(next)
		right.OpI(isa.MULI, rIdx, rIdx, 5).
			Op(isa.ADD, rIdx, rIdx, rV).
			OpI(isa.ADDI, rIdx, rIdx, 7).
			Jmp(next)
	}
	tail.Add(rAcc, rAcc, rV).
		Addi(rI, rI, 1).
		Jmp(loop)
	return b.MustBuild()
}

// compute builds the low-intensity family: a small-footprint sweep (fits in
// the cache hierarchy) with a configurable ALU/FP mix and, optionally, a
// hash-directed hard-to-predict branch per iteration (gobmk, sjeng, astar).
func compute(name string, footprintKB int, alu, fp int, branchy bool) *prog.Program {
	b := prog.NewBuilder(name)
	size := uint64(footprintKB) << 10
	data := b.Alloc(size, 64)
	entry := b.Block("entry")
	loop := b.Block("loop")
	entry.Movi(rOff, 0).
		Movi(rAcc, 1).
		Movi(rBase, int64(data)).
		Movi(rI, 0).
		Movi(rT, 0).
		Jmp(loop)
	loop.Add(rAddr, rBase, rOff).
		Ld(rV, rAddr, 0)
	for k := 0; k < alu; k++ {
		switch k % 4 {
		case 0:
			loop.Add(rAcc, rAcc, rV)
		case 1:
			loop.OpI(isa.ADDI, rT, rAcc, 13)
		case 2:
			loop.Op(isa.XOR, rAcc, rAcc, rT)
		default:
			loop.OpI(isa.MULI, rT, rT, 3)
		}
	}
	for k := 0; k < fp; k++ {
		if k%2 == 0 {
			loop.Op(isa.FMUL, rB, rAcc, rV)
		} else {
			loop.Op(isa.FADD, rB, rB, rAcc)
		}
	}
	loop.St(rAddr, 0, rAcc).
		Addi(rOff, rOff, 8).
		OpI(isa.ANDI, rOff, rOff, int64(size-8)).
		Addi(rI, rI, 1)
	if branchy {
		taken := b.Block("taken")
		rest := b.Block("rest")
		loop.OpI(isa.MULI, rB, rI, prime2|1).
			OpI(isa.ANDI, rB, rB, 1<<13).
			Bnez(rB, rest)
		taken.OpI(isa.ADDI, rAcc, rAcc, 5)
		rest.Op(isa.XOR, rT, rT, rAcc).Jmp(loop)
	} else {
		loop.Jmp(loop)
	}
	return b.MustBuild()
}

// mcfKernel models mcf's mix: a short-chain independent gather (arc-array
// dereferencing — the part the runahead buffer thrives on) plus a serial
// pointer chase every fourth iteration (node-list walking — dependent
// misses, the part Figure 2 classifies as having off-chip source data).
func mcfKernel(name string, footprint uint64, chainALU, fillerOps int) *prog.Program {
	b := prog.NewBuilder(name)
	const slotBytes = 2112
	slots := footprint / slotBytes
	mask := uint64(1)
	for mask*2 <= slots {
		mask *= 2
	}
	mask--
	data := b.Alloc(footprint, 64)

	// Node list for the chase: 32K nodes on distinct lines spanning twice the
	// LLC, linked by an additive full-cycle permutation (odd step over a
	// power of two) so the walk touches every node before repeating and the
	// working set never becomes cache-resident.
	const (
		nodes      = 32768
		nodeStride = 192
	)
	chaseBase := b.Alloc(nodes*nodeStride, 64)
	for i := uint64(0); i < nodes; i++ {
		next := (i + 40503) & (nodes - 1)
		b.Mem().Write64(chaseBase+i*nodeStride, int64(chaseBase+next*nodeStride))
	}

	const rP = isa.Reg(12)
	entry := b.Block("entry")
	loop := b.Block("loop")
	chase := b.Block("chase")
	body := b.Block("body")
	entry.Movi(rI, 0).
		Movi(rAcc, 0).
		Movi(rMask, int64(mask)).
		Movi(rBase, int64(data)).
		Movi(rP, int64(chaseBase)).
		Jmp(loop)
	// Every eighth iteration also advances the serial node walk; the period-8
	// pattern is trivially predictable, so only the chase load's latency and
	// dependence matter. The cadence keeps the serial component a minority of
	// mcf's misses (Figure 2) without making the whole kernel chase-bound.
	loop.OpI(isa.ANDI, rB, rI, 7).
		Bnez(rB, body)
	chase.Ld(rP, rP, 0)
	body.OpI(isa.MULI, rIdx, rI, prime1)
	for k := 0; k < chainALU; k++ {
		if k%2 == 0 {
			body.OpI(isa.ADDI, rIdx, rIdx, int64(k*1023+7))
		} else {
			body.OpI(isa.MULI, rIdx, rIdx, prime2|1)
		}
	}
	body.Op(isa.AND, rIdx, rIdx, rMask).
		OpI(isa.MULI, rAddr, rIdx, slotBytes).
		Add(rAddr, rAddr, rBase).
		Ld(rV, rAddr, 0).
		Add(rAcc, rAcc, rV)
	filler(body, fillerOps)
	body.Addi(rI, rI, 1).Jmp(loop)
	return b.MustBuild()
}
