// Package workload provides the synthetic stand-ins for the SPEC CPU2006
// benchmark suite (see DESIGN.md, "Substitutions"). Each of the 29 names
// from the paper maps to a small program in the simulator's ISA, drawn from
// six kernel families and parameterized so the *published characteristics*
// of that benchmark hold: its Table 2 memory-intensity class, its dependence
// chain length (Figure 5), its chain repetitiveness (Figure 4), its
// excess-operation ratio during runahead (Figure 3), and its friendliness to
// stream prefetching.
//
// The families:
//
//   - stream:  sequential multi-array sweeps (libquantum, lbm, bwaves, ...)
//   - gather:  indexed loads over a large footprint with a short, repetitive
//     address chain (mcf, soplex, milc, sphinx)
//   - stencil: strided sweeps; large strides defeat the stream prefetcher
//     (zeusmp, cactusADM)
//   - walk:    data-directed tree descent with long, path-dependent chains
//     and hard-to-predict branches (omnetpp)
//   - compute: small-footprint loops of varying ALU/FP/branch mix (the 16
//     low-intensity benchmarks)
//
// Programs are built lazily and cached; Program.NewMemory gives each run a
// private memory image.
package workload

import (
	"fmt"
	"sort"
	"sync"

	"runaheadsim/internal/prog"
)

// Class is the Table 2 memory-intensity class.
type Class uint8

// Memory intensity classes (Table 2: Low MPKI <= 2, Medium > 2, High >= 10).
const (
	Low Class = iota
	Medium
	High
)

// String implements fmt.Stringer.
func (c Class) String() string {
	switch c {
	case Low:
		return "low"
	case Medium:
		return "medium"
	default:
		return "high"
	}
}

// Spec names one benchmark and its expected class.
type Spec struct {
	Name  string
	Class Class
	build func() *prog.Program
}

// specs lists all 29 benchmarks in the paper's Figure 1 order (lowest to
// highest memory intensity).
var specs = []Spec{
	// Low intensity (16).
	{Name: "calculix", Class: Low, build: func() *prog.Program { return compute("calculix", 32, 10, 2, false) }},
	{Name: "povray", Class: Low, build: func() *prog.Program { return compute("povray", 32, 8, 4, true) }},
	{Name: "namd", Class: Low, build: func() *prog.Program { return compute("namd", 48, 6, 6, false) }},
	{Name: "gamess", Class: Low, build: func() *prog.Program { return compute("gamess", 32, 12, 3, false) }},
	{Name: "perlbench", Class: Low, build: func() *prog.Program { return compute("perlbench", 64, 14, 1, true) }},
	{Name: "tonto", Class: Low, build: func() *prog.Program { return compute("tonto", 48, 9, 4, false) }},
	{Name: "gromacs", Class: Low, build: func() *prog.Program { return compute("gromacs", 64, 8, 5, false) }},
	{Name: "gobmk", Class: Low, build: func() *prog.Program { return compute("gobmk", 80, 16, 1, true) }},
	{Name: "dealII", Class: Low, build: func() *prog.Program { return compute("dealII", 80, 10, 4, false) }},
	{Name: "sjeng", Class: Low, build: func() *prog.Program { return compute("sjeng", 80, 15, 1, true) }},
	{Name: "gcc", Class: Low, build: func() *prog.Program { return compute("gcc", 96, 12, 1, true) }},
	{Name: "hmmer", Class: Low, build: func() *prog.Program { return compute("hmmer", 96, 14, 2, false) }},
	{Name: "h264", Class: Low, build: func() *prog.Program { return compute("h264", 112, 12, 3, false) }},
	{Name: "bzip2", Class: Low, build: func() *prog.Program { return compute("bzip2", 112, 12, 1, true) }},
	{Name: "astar", Class: Low, build: func() *prog.Program { return compute("astar", 128, 14, 1, true) }},
	{Name: "xalancbmk", Class: Low, build: func() *prog.Program { return compute("xalancbmk", 128, 13, 2, true) }},

	// Medium intensity (3). Odd line strides (47, 41) defeat the stream
	// prefetcher's sequential tracking; the heavy filler models stencil FP
	// work and keeps MPKI in the 2-10 band.
	{Name: "zeusmp", Class: Medium, build: func() *prog.Program {
		return stencil("zeusmp", 16<<20, 47*64, 2, 24)
	}},
	{Name: "cactusADM", Class: Medium, build: func() *prog.Program {
		return stencil("cactusADM", 16<<20, 41*64, 2, 30)
	}},
	{Name: "wrf", Class: Medium, build: func() *prog.Program {
		return stream("wrf", 2, 24<<20, 30, 1) // sequential: the prefetcher covers it
	}},

	// High intensity (10). Streams use at most two arrays so their miss PCs
	// fit the two-entry chain cache, as the paper's high per-benchmark chain
	// cache hit rates imply for SPEC.
	{Name: "GemsFDTD", Class: High, build: func() *prog.Program { return stream("GemsFDTD", 2, 48<<20, 8, 0) }},
	{Name: "leslie3d", Class: High, build: func() *prog.Program { return stream("leslie3d", 2, 48<<20, 14, 0) }},
	{Name: "omnetpp", Class: High, build: func() *prog.Program { return walk("omnetpp", 64<<20, 8) }},
	{Name: "milc", Class: High, build: func() *prog.Program { return gather("milc", 64<<20, 4, 30, 1, false) }},
	{Name: "soplex", Class: High, build: func() *prog.Program { return gather("soplex", 48<<20, 6, 8, 0, false) }},
	{Name: "sphinx3", Class: High, build: func() *prog.Program { return gather("sphinx3", 48<<20, 30, 10, 0, true) }},
	{Name: "bwaves", Class: High, build: func() *prog.Program { return stream("bwaves", 2, 64<<20, 8, 0) }},
	{Name: "libquantum", Class: High, build: func() *prog.Program { return stream("libquantum", 1, 64<<20, 3, 1) }},
	{Name: "lbm", Class: High, build: func() *prog.Program { return stream("lbm", 2, 64<<20, 12, 1) }},
	{Name: "mcf", Class: High, build: func() *prog.Program { return mcfKernel("mcf", 96<<20, 3, 44) }},
}

// All returns every benchmark spec in Figure 1 order.
func All() []Spec { return append([]Spec(nil), specs...) }

// MediumHigh returns the 13 medium+high intensity benchmarks (the set most
// figures average over).
func MediumHigh() []Spec {
	var out []Spec
	for _, s := range specs {
		if s.Class != Low {
			out = append(out, s)
		}
	}
	return out
}

// Names returns all benchmark names in Figure 1 order.
func Names() []string {
	out := make([]string, len(specs))
	for i, s := range specs {
		out[i] = s.Name
	}
	return out
}

var (
	cacheMu sync.Mutex
	built   = map[string]*prog.Program{}
)

// Load returns the (cached) program for a benchmark name.
func Load(name string) (*prog.Program, error) {
	cacheMu.Lock()
	defer cacheMu.Unlock()
	if p, ok := built[name]; ok {
		return p, nil
	}
	for _, s := range specs {
		if s.Name == name {
			p := s.build()
			if err := p.Validate(); err != nil {
				return nil, fmt.Errorf("workload %q: %w", name, err)
			}
			built[name] = p
			return p, nil
		}
	}
	names := Names()
	sort.Strings(names)
	return nil, fmt.Errorf("workload: unknown benchmark %q (have %v)", name, names)
}

// MustLoad is Load, panicking on unknown names (a programming error in the
// harness, not a runtime condition).
func MustLoad(name string) *prog.Program {
	p, err := Load(name)
	if err != nil {
		panic(err)
	}
	return p
}

// SpecOf returns the spec for a name.
func SpecOf(name string) (Spec, bool) {
	for _, s := range specs {
		if s.Name == name {
			return s, true
		}
	}
	return Spec{}, false
}
