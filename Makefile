# Convenience targets; everything is plain `go` underneath.

.PHONY: test vet lint check bench sweep report examples clean

test:
	go test ./...

vet:
	go vet ./...

# Static analysis: go vet plus the repo-specific simlint analyzers
# (determinism, stats hygiene, trace hygiene). See DESIGN.md, "Correctness
# tooling".
lint:
	go vet ./...
	go run ./cmd/simlint ./internal/... ./cmd/...

# Runtime sanitizer: the simcheck build tag attaches the lockstep
# architectural oracle and per-cycle invariant sweep to every simulation the
# test suite runs.
check:
	go test -tags simcheck ./...

# One scaled-down benchmark per paper table/figure, plus ablations.
bench:
	go test -bench . -benchtime 1x .

# Regenerate every table and figure at full fidelity (~10 minutes).
sweep:
	go run ./cmd/runahead-sweep -uops 150000 -out sweep_results.txt

# Paper-claim verdict table.
report:
	go run ./cmd/runahead-report

examples:
	go run ./examples/quickstart
	go run ./examples/mcf_pointer_chase
	go run ./examples/prefetcher_interaction
	go run ./examples/energy_tradeoff

clean:
	rm -f sweep_results.txt test_output.txt bench_output.txt
