# Convenience targets; everything is plain `go` underneath.

.PHONY: test vet lint check bench bench-core bench-mem bench-mc bench-twin bench-go sweep report examples telemetry-smoke clean

test:
	go test ./...

vet:
	go vet ./...

# Static analysis: go vet plus the repo-specific simlint analyzers —
# expression rules (determinism, stats hygiene, trace hygiene) and contract
# analyzers (snapshot completeness, fingerprint coverage, hot-path
# allocation-freedom, lock discipline), plus suppression hygiene over every
# //simlint: directive. See DESIGN.md §12, "Contract analyzers".
lint:
	go vet ./...
	go run ./cmd/simlint

# Runtime sanitizer: the simcheck build tag attaches the lockstep
# architectural oracle and per-cycle invariant sweep to every simulation the
# test suite runs.
check:
	go test -tags simcheck ./...

# Benchmark the sweep itself: time a sampled parallel sweep against the
# sequential full-detail reference and write wall-clock, sim-cycles/sec,
# speedup, and sampling error to BENCH_sweep.json.
bench:
	go run ./cmd/runahead-sweep -experiments figure9 \
		-benchmarks mcf,libquantum,lbm,milc -uops 1000000 \
		-sample -intervals 4 -sample-window 40000 -sample-warmup 20000 \
		-j 8 -q -bench-out BENCH_sweep.json -out /dev/null

# Benchmark the cycle kernel: event-driven wakeup/select scheduler vs the
# reference ROB scan on the memory-bound workloads, each pair verified to
# finish on the same cycle with byte-identical snapshots. Writes
# BENCH_core.json (see DESIGN.md, "Event-driven wakeup/select scheduler").
bench-core:
	go run ./cmd/runahead-sweep -bench-core BENCH_core.json

# Benchmark the memory system + clock: the event-driven hierarchy with
# whole-simulator stall skipping (ClockWarp) vs the per-cycle reference
# (ClockTick) on the memory-bound workloads, each pair verified to finish on
# the same cycle with byte-identical snapshots (hence zero IPC deviation).
# Writes BENCH_mem.json (see DESIGN.md, "Event-driven memory system and the
# clock warp").
bench-mem:
	go run ./cmd/runahead-sweep -uops 300000 -bench-mem BENCH_mem.json

# Benchmark the multi-core cluster: 2- and 4-core multi-programmed mixes
# sharing one LLC + DRAM, baseline vs runahead buffer, with per-rep snapshot
# digests cross-checked for determinism. Writes BENCH_mc.json: weighted
# speedup, fairness, and simulation throughput per cell plus RB-vs-baseline
# deltas (see DESIGN.md §13).
bench-mc:
	go run ./cmd/runahead-sweep -uops 60000 -bench-mc BENCH_mc.json

# Benchmark the analytical twin: run the full-detail figure9 reference
# sweep, calibrate the interval model against it, then run a fresh screened
# sweep (twin predictions everywhere, detailed simulation only on promoted
# regions). Writes BENCH_twin.json: calibration accuracy (IPC MAPE, Pearson
# r, energy MAPE, per-workload slices), promoted-region fidelity
# (bit-identical runs, RB-vs-baseline ranking), and the wall-time ratio
# against full detail (see DESIGN.md §15). Leaves the calibration artifact
# at twin_coeffs.json for runahead-sweep/-report -screen.
bench-twin:
	go run ./cmd/runahead-sweep -j 8 -q -bench-twin BENCH_twin.json -twin twin_coeffs.json

# Live-introspection smoke: the -tags nometrics build, every telemetry
# endpoint served during a real parallel sampled sweep (including an SSE
# progress frame), and a forced watchdog trip producing a non-empty
# flight-recorder dump. See DESIGN.md §11.
telemetry-smoke:
	sh ./scripts/telemetry_smoke.sh

# One scaled-down benchmark per paper table/figure, plus ablations.
bench-go:
	go test -bench . -benchtime 1x .

# Regenerate every table and figure at full fidelity (~10 minutes).
sweep:
	go run ./cmd/runahead-sweep -uops 150000 -out sweep_results.txt

# Paper-claim verdict table.
report:
	go run ./cmd/runahead-report

examples:
	go run ./examples/quickstart
	go run ./examples/mcf_pointer_chase
	go run ./examples/prefetcher_interaction
	go run ./examples/energy_tradeoff

clean:
	rm -f sweep_results.txt test_output.txt bench_output.txt BENCH_sweep.json BENCH_core.json BENCH_mem.json BENCH_mc.json BENCH_twin.json twin_coeffs.json
