package runaheadsim

import (
	"strings"
	"testing"
)

func TestRunBaseline(t *testing.T) {
	res, err := Run(Config{Benchmark: "mcf", MeasureUops: 10_000, WarmupUops: 10_000})
	if err != nil {
		t.Fatal(err)
	}
	if res.IPC <= 0 || res.Committed < 10_000 || res.Cycles <= 0 {
		t.Fatalf("implausible result: %+v", res)
	}
	if res.IPCDeltaPct != 0 {
		t.Fatal("baseline delta vs itself must be zero")
	}
	if res.Mode != ModeBaseline {
		t.Fatalf("mode = %q", res.Mode)
	}
}

func TestRunHybridReportsDeltas(t *testing.T) {
	res, err := Run(Config{Benchmark: "mcf", Mode: ModeHybrid, MeasureUops: 20_000, WarmupUops: 20_000})
	if err != nil {
		t.Fatal(err)
	}
	if res.RunaheadIntervals == 0 {
		t.Fatal("hybrid on mcf must runahead")
	}
	if res.IPCDeltaPct <= 0 {
		t.Fatalf("hybrid on mcf should gain IPC, got %+.1f%%", res.IPCDeltaPct)
	}
	if res.Stats == nil {
		t.Fatal("raw stats missing")
	}
}

func TestRunRejectsUnknowns(t *testing.T) {
	if _, err := Run(Config{Benchmark: "nope"}); err == nil {
		t.Fatal("unknown benchmark must error")
	}
	if _, err := Run(Config{Benchmark: "mcf", Mode: "warp-drive"}); err == nil {
		t.Fatal("unknown mode must error")
	}
}

func TestBenchmarkLists(t *testing.T) {
	if len(Benchmarks()) != 29 {
		t.Fatalf("Benchmarks() = %d entries", len(Benchmarks()))
	}
	if len(MediumHighBenchmarks()) != 13 {
		t.Fatalf("MediumHighBenchmarks() = %d entries", len(MediumHighBenchmarks()))
	}
	if len(Modes()) != 6 {
		t.Fatalf("Modes() = %d entries", len(Modes()))
	}
}

func TestExperimentIDs(t *testing.T) {
	ids := ExperimentIDs()
	if len(ids) != 22 {
		t.Fatalf("have %d experiments", len(ids))
	}
	if _, err := RunExperiment("figure99", 1000); err == nil {
		t.Fatal("unknown experiment must error")
	}
}

func TestRunExperimentTable1(t *testing.T) {
	out, err := RunExperiment("table1", 1000)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "192-entry ROB") {
		t.Fatalf("table1 output wrong:\n%s", out)
	}
}
